// Package h264 implements a simplified H.264/AVC intra encoder (and the
// matching decoder used for self-checks), the paper's third benchmark
// application. The pipeline is the real one: 4×4 intra prediction from
// reconstructed neighbours (vertical, horizontal and DC modes), the
// H.264 4×4 integer core transform, the standard QP-dependent
// multiplication-factor quantizer with its periodicity of 6, and
// Exp-Golomb entropy coding. Omitted relative to a full encoder:
// inter prediction, CABAC/CAVLC, deblocking and chroma — none of which
// the timing experiments depend on.
package h264

// Forward 4×4 core transform: Y = C·X·Cᵀ with
// C = [1 1 1 1; 2 1 -1 -2; 1 -1 -1 1; 1 -2 2 -1].
func forward4x4(x *[16]int32) {
	var t [16]int32
	// Rows.
	for i := 0; i < 4; i++ {
		a, b, c, d := x[i*4], x[i*4+1], x[i*4+2], x[i*4+3]
		s0, s1 := a+d, b+c
		s2, s3 := a-d, b-c
		t[i*4] = s0 + s1
		t[i*4+1] = 2*s2 + s3
		t[i*4+2] = s0 - s1
		t[i*4+3] = s2 - 2*s3
	}
	// Columns.
	for i := 0; i < 4; i++ {
		a, b, c, d := t[i], t[4+i], t[8+i], t[12+i]
		s0, s1 := a+d, b+c
		s2, s3 := a-d, b-c
		x[i] = s0 + s1
		x[4+i] = 2*s2 + s3
		x[8+i] = s0 - s1
		x[12+i] = s2 - 2*s3
	}
}

// Inverse 4×4 core transform with the spec's final >>6 rounding,
// matching forward4x4 composed with the quantizer scales below.
func inverse4x4(x *[16]int32) {
	var t [16]int32
	// Rows.
	for i := 0; i < 4; i++ {
		a, b, c, d := x[i*4], x[i*4+1], x[i*4+2], x[i*4+3]
		s0, s1 := a+c, a-c
		s2, s3 := (b>>1)-d, b+(d>>1)
		t[i*4] = s0 + s3
		t[i*4+1] = s1 + s2
		t[i*4+2] = s1 - s2
		t[i*4+3] = s0 - s3
	}
	// Columns.
	for i := 0; i < 4; i++ {
		a, b, c, d := t[i], t[4+i], t[8+i], t[12+i]
		s0, s1 := a+c, a-c
		s2, s3 := (b>>1)-d, b+(d>>1)
		x[i] = (s0 + s3 + 32) >> 6
		x[4+i] = (s1 + s2 + 32) >> 6
		x[8+i] = (s1 - s2 + 32) >> 6
		x[12+i] = (s0 - s3 + 32) >> 6
	}
}

// Quantizer multiplication factors MF (encode) and scales V (decode),
// indexed by QP mod 6 and coefficient class: class 0 for positions
// (0,0),(0,2),(2,0),(2,2); class 1 for (1,1),(1,3),(3,1),(3,3);
// class 2 for the rest — the standard H.264 tables.
var mf = [6][3]int32{
	{13107, 5243, 8066},
	{11916, 4660, 7490},
	{10082, 4194, 6554},
	{9362, 3647, 5825},
	{8192, 3355, 5243},
	{7282, 2893, 4559},
}

var vScale = [6][3]int32{
	{10, 16, 13},
	{11, 18, 14},
	{13, 20, 16},
	{14, 23, 18},
	{16, 25, 20},
	{18, 29, 23},
}

// coefClass maps a 4×4 position to its quantizer class.
func coefClass(pos int) int {
	r, c := pos/4, pos%4
	evenR, evenC := r%2 == 0, c%2 == 0
	switch {
	case evenR && evenC:
		return 0
	case !evenR && !evenC:
		return 1
	default:
		return 2
	}
}

// quantize maps transform coefficients to levels for the given QP.
func quantize(x *[16]int32, qp int) {
	per := uint(qp / 6)
	rem := qp % 6
	qbits := uint(15) + per
	f := (int32(1) << qbits) / 3 // intra rounding offset f = 2^qbits/3
	for i := 0; i < 16; i++ {
		m := mf[rem][coefClass(i)]
		v := x[i]
		neg := v < 0
		if neg {
			v = -v
		}
		lv := (v*m + f) >> qbits
		if neg {
			lv = -lv
		}
		x[i] = lv
	}
}

// dequantize maps levels back to scaled coefficients for inverse4x4.
func dequantize(x *[16]int32, qp int) {
	per := uint(qp / 6)
	rem := qp % 6
	for i := 0; i < 16; i++ {
		x[i] = x[i] * vScale[rem][coefClass(i)] << per
	}
}

// zigzag4 is the 4×4 zigzag scan order.
var zigzag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}
