package h264

import (
	"encoding/binary"
	"fmt"
)

// Intra prediction modes for 4×4 luma blocks.
const (
	modeVertical   = 0 // copy the row above
	modeHorizontal = 1 // copy the column left
	modeDC         = 2 // mean of available neighbours
	numModes       = 3
)

// magic identifies this package's frame bitstream.
var magic = [4]byte{'F', '2', '6', '4'}

// headerBytes: magic, width, height, qp.
const headerBytes = 4 + 2 + 2 + 1

// MaxQP is the largest supported quantization parameter (as in H.264).
const MaxQP = 51

// Encode compresses an 8-bit grayscale frame as an intra-only picture at
// the given QP (0..51). Dimensions must be multiples of 4.
func Encode(pix []byte, w, h, qp int) ([]byte, error) {
	if w <= 0 || h <= 0 || w%4 != 0 || h%4 != 0 {
		return nil, fmt.Errorf("h264: frame size %dx%d not a positive multiple of 4", w, h)
	}
	if len(pix) != w*h {
		return nil, fmt.Errorf("h264: pixel buffer length %d != %d", len(pix), w*h)
	}
	if qp < 0 || qp > MaxQP {
		return nil, fmt.Errorf("h264: QP %d outside [0,%d]", qp, MaxQP)
	}
	hdr := make([]byte, headerBytes)
	copy(hdr, magic[:])
	binary.BigEndian.PutUint16(hdr[4:6], uint16(w))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(h))
	hdr[8] = byte(qp)

	bw := &bitWriter{buf: make([]byte, 0, w*h/8)}
	recon := make([]byte, w*h) // reconstruction loop, as a real encoder
	var pred, residual [16]int32

	for by := 0; by < h; by += 4 {
		for bx := 0; bx < w; bx += 4 {
			mode := chooseMode(pix, recon, w, h, bx, by)
			predict(recon, w, h, bx, by, mode, &pred)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					residual[y*4+x] = int32(pix[(by+y)*w+bx+x]) - pred[y*4+x]
				}
			}
			forward4x4(&residual)
			quantize(&residual, qp)

			bw.writeUE(uint32(mode))
			encodeResidual(bw, &residual)

			// Reconstruct for neighbour prediction.
			dequantize(&residual, qp)
			inverse4x4(&residual)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					v := residual[y*4+x] + pred[y*4+x]
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					recon[(by+y)*w+bx+x] = byte(v)
				}
			}
		}
	}
	return append(hdr, bw.flush()...), nil
}

// Decode reconstructs the frame of an Encode bitstream.
func Decode(data []byte) (pix []byte, w, h int, err error) {
	if len(data) < headerBytes {
		return nil, 0, 0, fmt.Errorf("h264: %d bytes shorter than header", len(data))
	}
	if [4]byte(data[0:4]) != magic {
		return nil, 0, 0, fmt.Errorf("h264: bad magic %q", data[0:4])
	}
	w = int(binary.BigEndian.Uint16(data[4:6]))
	h = int(binary.BigEndian.Uint16(data[6:8]))
	qp := int(data[8])
	if w == 0 || h == 0 || w%4 != 0 || h%4 != 0 || qp > MaxQP {
		return nil, 0, 0, fmt.Errorf("h264: invalid header %dx%d qp=%d", w, h, qp)
	}
	br := &bitReader{buf: data[headerBytes:]}
	pix = make([]byte, w*h)
	var pred, residual [16]int32

	for by := 0; by < h; by += 4 {
		for bx := 0; bx < w; bx += 4 {
			modeU, err := br.readUE()
			if err != nil {
				return nil, 0, 0, err
			}
			if modeU >= numModes {
				return nil, 0, 0, fmt.Errorf("h264: invalid prediction mode %d", modeU)
			}
			if err := decodeResidual(br, &residual); err != nil {
				return nil, 0, 0, err
			}
			predict(pix, w, h, bx, by, int(modeU), &pred)
			dequantize(&residual, qp)
			inverse4x4(&residual)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					v := residual[y*4+x] + pred[y*4+x]
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					pix[(by+y)*w+bx+x] = byte(v)
				}
			}
		}
	}
	return pix, w, h, nil
}

// predict fills pred with the block prediction from reconstructed
// neighbours in recon. Unavailable neighbours default to 128, as in the
// spec's DC fallback.
func predict(recon []byte, w, h, bx, by, mode int, pred *[16]int32) {
	hasTop := by > 0
	hasLeft := bx > 0
	top := func(x int) int32 {
		if hasTop {
			return int32(recon[(by-1)*w+bx+x])
		}
		return 128
	}
	left := func(y int) int32 {
		if hasLeft {
			return int32(recon[(by+y)*w+bx-1])
		}
		return 128
	}
	switch mode {
	case modeVertical:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				pred[y*4+x] = top(x)
			}
		}
	case modeHorizontal:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				pred[y*4+x] = left(y)
			}
		}
	default: // DC
		var sum, n int32
		if hasTop {
			for x := 0; x < 4; x++ {
				sum += top(x)
			}
			n += 4
		}
		if hasLeft {
			for y := 0; y < 4; y++ {
				sum += left(y)
			}
			n += 4
		}
		dc := int32(128)
		if n > 0 {
			dc = (sum + n/2) / n
		}
		for i := range pred {
			pred[i] = dc
		}
	}
}

// chooseMode picks the intra mode with the lowest SAD against the
// source block, predicting from the reconstruction (encoder-decoder
// agreement).
func chooseMode(src, recon []byte, w, h, bx, by int) int {
	best, bestSAD := modeDC, int32(1)<<30
	var pred [16]int32
	for mode := 0; mode < numModes; mode++ {
		predict(recon, w, h, bx, by, mode, &pred)
		var sad int32
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				d := int32(src[(by+y)*w+bx+x]) - pred[y*4+x]
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad < bestSAD {
			best, bestSAD = mode, sad
		}
	}
	return best
}

// encodeResidual writes the zigzag-scanned levels as: total nonzero
// count ue(v), then per nonzero coefficient (zero-run ue, level se).
func encodeResidual(bw *bitWriter, coef *[16]int32) {
	var nz uint32
	for _, pos := range zigzag4 {
		if coef[pos] != 0 {
			nz++
		}
	}
	bw.writeUE(nz)
	run := uint32(0)
	for _, pos := range zigzag4 {
		if coef[pos] == 0 {
			run++
			continue
		}
		bw.writeUE(run)
		bw.writeSE(coef[pos])
		run = 0
	}
}

// decodeResidual reverses encodeResidual into natural order.
func decodeResidual(br *bitReader, coef *[16]int32) error {
	for i := range coef {
		coef[i] = 0
	}
	nz, err := br.readUE()
	if err != nil {
		return err
	}
	if nz > 16 {
		return errBitstream
	}
	scan := 0
	for i := uint32(0); i < nz; i++ {
		run, err := br.readUE()
		if err != nil {
			return err
		}
		level, err := br.readSE()
		if err != nil {
			return err
		}
		scan += int(run)
		if scan >= 16 || level == 0 {
			return errBitstream
		}
		coef[zigzag4[scan]] = level
		scan++
	}
	return nil
}
