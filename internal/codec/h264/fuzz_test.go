package h264

import "testing"

// FuzzDecode hardens the decoder against corrupt bitstreams.
func FuzzDecode(f *testing.F) {
	good, err := Encode(testFrame(16, 16, 1), 16, 16, 24)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:len(good)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		if pix, w, h, err := Decode(data); err == nil {
			if len(pix) != w*h {
				t.Fatalf("inconsistent decode: %dx%d with %d pixels", w, h, len(pix))
			}
		}
	})
}
