package mjpeg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Color support: YCbCr 4:2:0 frames, coded as three planes — the luma
// plane with the luminance quantization table and the two subsampled
// chroma planes with the standard chrominance table. The paper's
// experiments use grayscale-equivalent 76.8 KB frames; color frames are
// provided for applications beyond the reproduction.

// ColorFrame is a YCbCr image with 4:2:0 chroma subsampling: Cb and Cr
// are (W/2)×(H/2).
type ColorFrame struct {
	W, H   int
	Y      []byte // W*H
	Cb, Cr []byte // (W/2)*(H/2) each
}

// NewColorFrame allocates a zeroed 4:2:0 frame; dimensions must be even.
func NewColorFrame(w, h int) *ColorFrame {
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("mjpeg: invalid color frame size %dx%d", w, h))
	}
	return &ColorFrame{
		W: w, H: h,
		Y:  make([]byte, w*h),
		Cb: make([]byte, w*h/4),
		Cr: make([]byte, w*h/4),
	}
}

// baseChromaQuant is the standard JPEG chrominance quantization table
// (ITU T.81 Annex K), natural order.
var baseChromaQuant = [64]int{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// chromaQuantTable scales the chroma table like quantTable does for luma.
func chromaQuantTable(quality int) [64]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	scale := 200 - 2*quality
	if quality < 50 {
		scale = 5000 / quality
	}
	var q [64]int
	for i, b := range baseChromaQuant {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		q[i] = v
	}
	return q
}

// colorMagic identifies a color bitstream.
var colorMagic = [4]byte{'F', 'J', 'P', 'C'}

// encodePlane codes one plane with the given quantization table into w,
// resetting the DC predictor first (planes are independently decodable).
func encodePlane(w *bitWriter, pix []byte, width, height int, q *[64]int) error {
	prevDC := 0
	var block [64]float64
	var coef [64]int
	for by := 0; by < height; by += 8 {
		for bx := 0; bx < width; bx += 8 {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					block[y*8+x] = float64(pix[(by+y)*width+bx+x]) - 128
				}
			}
			fdctFast(&block)
			for i := 0; i < 64; i++ {
				coef[i] = int(math.Round(block[zigzag[i]] / float64(q[zigzag[i]])))
			}
			if err := encodeBlock(w, &coef, &prevDC); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodePlane reverses encodePlane.
func decodePlane(r *bitReader, pix []byte, width, height int, q *[64]int) error {
	prevDC := 0
	var coef [64]int
	var block [64]float64
	for by := 0; by < height; by += 8 {
		for bx := 0; bx < width; bx += 8 {
			if err := decodeBlock(r, &coef, &prevDC); err != nil {
				return err
			}
			for i := 0; i < 64; i++ {
				block[zigzag[i]] = float64(coef[i] * q[zigzag[i]])
			}
			idct(&block)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					v := math.Round(block[y*8+x]) + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					pix[(by+y)*width+bx+x] = byte(v)
				}
			}
		}
	}
	return nil
}

// EncodeColor compresses a 4:2:0 frame; luma dimensions must be
// multiples of 16 so every plane tiles into 8×8 blocks.
func EncodeColor(f *ColorFrame, quality int) ([]byte, error) {
	if f.W%16 != 0 || f.H%16 != 0 {
		return nil, fmt.Errorf("mjpeg: color frame size %dx%d not a multiple of 16", f.W, f.H)
	}
	if len(f.Y) != f.W*f.H || len(f.Cb) != f.W*f.H/4 || len(f.Cr) != f.W*f.H/4 {
		return nil, fmt.Errorf("mjpeg: color plane sizes inconsistent with %dx%d", f.W, f.H)
	}
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("mjpeg: quality %d outside [1,100]", quality)
	}
	qY := quantTable(quality)
	qC := chromaQuantTable(quality)
	w := &bitWriter{buf: make([]byte, 0, f.W*f.H/5)}
	hdr := make([]byte, headerBytes)
	copy(hdr, colorMagic[:])
	binary.BigEndian.PutUint16(hdr[4:6], uint16(f.W))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(f.H))
	hdr[8] = byte(quality)
	if err := encodePlane(w, f.Y, f.W, f.H, &qY); err != nil {
		return nil, err
	}
	if err := encodePlane(w, f.Cb, f.W/2, f.H/2, &qC); err != nil {
		return nil, err
	}
	if err := encodePlane(w, f.Cr, f.W/2, f.H/2, &qC); err != nil {
		return nil, err
	}
	return append(hdr, w.flush()...), nil
}

// DecodeColor reconstructs a 4:2:0 frame from an EncodeColor bitstream.
func DecodeColor(data []byte) (*ColorFrame, error) {
	if len(data) < headerBytes {
		return nil, fmt.Errorf("mjpeg: %d bytes shorter than header", len(data))
	}
	if [4]byte(data[0:4]) != colorMagic {
		return nil, fmt.Errorf("mjpeg: bad color magic %q", data[0:4])
	}
	w := int(binary.BigEndian.Uint16(data[4:6]))
	h := int(binary.BigEndian.Uint16(data[6:8]))
	quality := int(data[8])
	if w == 0 || h == 0 || w%16 != 0 || h%16 != 0 || quality < 1 || quality > 100 {
		return nil, fmt.Errorf("mjpeg: invalid color header %dx%d q=%d", w, h, quality)
	}
	qY := quantTable(quality)
	qC := chromaQuantTable(quality)
	f := NewColorFrame(w, h)
	r := &bitReader{buf: data[headerBytes:]}
	if err := decodePlane(r, f.Y, w, h, &qY); err != nil {
		return nil, err
	}
	if err := decodePlane(r, f.Cb, w/2, h/2, &qC); err != nil {
		return nil, err
	}
	if err := decodePlane(r, f.Cr, w/2, h/2, &qC); err != nil {
		return nil, err
	}
	return f, nil
}

// clamp8 rounds and clamps to [0, 255].
func clamp8(v float64) byte {
	v = math.Round(v)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// FromRGB converts interleaved 8-bit RGB (len = 3*W*H) into a 4:2:0
// frame using the BT.601 full-range matrix, averaging each 2×2 chroma
// neighbourhood.
func FromRGB(rgb []byte, w, h int) (*ColorFrame, error) {
	if len(rgb) != 3*w*h {
		return nil, fmt.Errorf("mjpeg: RGB buffer %d bytes, want %d", len(rgb), 3*w*h)
	}
	f := NewColorFrame(w, h)
	cb := make([]float64, w*h)
	cr := make([]float64, w*h)
	for i := 0; i < w*h; i++ {
		r := float64(rgb[3*i])
		g := float64(rgb[3*i+1])
		b := float64(rgb[3*i+2])
		f.Y[i] = clamp8(0.299*r + 0.587*g + 0.114*b)
		cb[i] = -0.168736*r - 0.331264*g + 0.5*b + 128
		cr[i] = 0.5*r - 0.418688*g - 0.081312*b + 128
	}
	for cy := 0; cy < h/2; cy++ {
		for cx := 0; cx < w/2; cx++ {
			i0 := (2*cy)*w + 2*cx
			i1 := i0 + 1
			i2 := i0 + w
			i3 := i2 + 1
			f.Cb[cy*(w/2)+cx] = clamp8((cb[i0] + cb[i1] + cb[i2] + cb[i3]) / 4)
			f.Cr[cy*(w/2)+cx] = clamp8((cr[i0] + cr[i1] + cr[i2] + cr[i3]) / 4)
		}
	}
	return f, nil
}

// ToRGB converts a 4:2:0 frame back to interleaved 8-bit RGB with
// nearest-neighbour chroma upsampling.
func (f *ColorFrame) ToRGB() []byte {
	out := make([]byte, 3*f.W*f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			i := y*f.W + x
			ci := (y/2)*(f.W/2) + x/2
			yy := float64(f.Y[i])
			cb := float64(f.Cb[ci]) - 128
			cr := float64(f.Cr[ci]) - 128
			out[3*i] = clamp8(yy + 1.402*cr)
			out[3*i+1] = clamp8(yy - 0.344136*cb - 0.714136*cr)
			out[3*i+2] = clamp8(yy + 1.772*cb)
		}
	}
	return out
}
