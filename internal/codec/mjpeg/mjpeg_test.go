package mjpeg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDCTRoundTrip(t *testing.T) {
	var block, orig [64]float64
	for i := range block {
		block[i] = float64((i*37)%256) - 128
		orig[i] = block[i]
	}
	fdct(&block)
	idct(&block)
	for i := range block {
		if math.Abs(block[i]-orig[i]) > 1e-9 {
			t.Fatalf("DCT round-trip error at %d: %g vs %g", i, block[i], orig[i])
		}
	}
}

func TestDCTDCCoefficient(t *testing.T) {
	// A flat block transforms to a single DC coefficient = 8*value.
	var block [64]float64
	for i := range block {
		block[i] = 10
	}
	fdct(&block)
	if math.Abs(block[0]-80) > 1e-9 {
		t.Errorf("DC = %g, want 80", block[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(block[i]) > 1e-9 {
			t.Errorf("AC[%d] = %g, want 0", i, block[i])
		}
	}
}

func TestQuantTableScaling(t *testing.T) {
	q50 := quantTable(50)
	if q50 != baseQuant {
		t.Error("quality 50 must reproduce the base table")
	}
	q90, q10 := quantTable(90), quantTable(10)
	for i := range q90 {
		if q90[i] > q50[i] {
			t.Fatalf("q90[%d] = %d > q50 %d", i, q90[i], q50[i])
		}
		if q10[i] < q50[i] {
			t.Fatalf("q10[%d] = %d < q50 %d", i, q10[i], q50[i])
		}
	}
	// Clamping.
	q1 := quantTable(-5)
	for _, v := range q1 {
		if v < 1 || v > 255 {
			t.Fatalf("clamped table entry %d outside [1,255]", v)
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	var seen [64]bool
	for _, v := range zigzag {
		if v < 0 || v > 63 || seen[v] {
			t.Fatal("zigzag is not a permutation of 0..63")
		}
		seen[v] = true
	}
	// First entries follow the JPEG scan.
	if zigzag[0] != 0 || zigzag[1] != 1 || zigzag[2] != 8 || zigzag[63] != 63 {
		t.Error("zigzag prefix/suffix wrong")
	}
}

func TestBitIORoundTrip(t *testing.T) {
	w := &bitWriter{}
	w.writeBits(0b101, 3)
	w.writeBits(0xFFFF, 16)
	w.writeBits(0, 5)
	buf := w.flush()
	r := &bitReader{buf: buf}
	if v, _ := r.readBits(3); v != 0b101 {
		t.Errorf("read 3 bits = %b", v)
	}
	if v, _ := r.readBits(16); v != 0xFFFF {
		t.Errorf("read 16 bits = %x", v)
	}
	if v, _ := r.readBits(5); v != 0 {
		t.Errorf("read 5 bits = %b", v)
	}
	if _, err := r.readBits(9); err == nil {
		t.Error("reading past end should fail")
	}
}

func TestHuffmanRoundTripAllSymbols(t *testing.T) {
	for _, table := range []*huffTable{dcTable, acTable} {
		w := &bitWriter{}
		var syms []byte
		for s := range table.codes {
			syms = append(syms, s)
		}
		for _, s := range syms {
			if err := table.encode(w, s); err != nil {
				t.Fatal(err)
			}
		}
		r := &bitReader{buf: w.flush()}
		for i, want := range syms {
			got, err := table.decode(r)
			if err != nil {
				t.Fatalf("decode symbol %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("symbol %d = %#x, want %#x", i, got, want)
			}
		}
	}
}

func TestHuffmanPrefixFree(t *testing.T) {
	for _, table := range []*huffTable{dcTable, acTable} {
		type cd struct {
			bits uint32
			n    uint8
		}
		var all []cd
		for _, c := range table.codes {
			all = append(all, cd{c.bits, c.n})
		}
		for i := range all {
			for j := range all {
				if i == j {
					continue
				}
				a, b := all[i], all[j]
				if a.n <= b.n && b.bits>>(b.n-a.n) == a.bits {
					t.Fatalf("code %b/%d is a prefix of %b/%d", a.bits, a.n, b.bits, b.n)
				}
			}
		}
	}
}

func TestHuffmanUnknownSymbol(t *testing.T) {
	w := &bitWriter{}
	if err := acTable.encode(w, 0x0B); err == nil { // size 11 not in alphabet
		t.Error("unknown symbol should fail")
	}
}

func TestMagnitudeRoundTrip(t *testing.T) {
	for _, v := range []int{0, 1, -1, 5, -5, 127, -127, 1023, -1023} {
		size := magnitudeCategory(v)
		w := &bitWriter{}
		encodeMagnitude(w, v, size)
		if v == 0 {
			continue
		}
		r := &bitReader{buf: w.flush()}
		got, err := decodeMagnitude(r, size)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("magnitude %d round-tripped to %d", v, got)
		}
	}
}

func TestMagnitudeCategory(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, -1: 1, 2: 2, 3: 2, -4: 3, 255: 8, -256: 9}
	for v, want := range cases {
		if got := magnitudeCategory(v); got != want {
			t.Errorf("category(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestEncodeDecodeQuality(t *testing.T) {
	f := TestFrame(320, 240, 0)
	data, err := Encode(f, 75)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := PSNR(f, dec)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 28 {
		t.Errorf("PSNR = %.1f dB, want >= 28 (recognizable reconstruction)", psnr)
	}
	if len(dec.Pix) != 320*240 {
		t.Errorf("decoded %d pixels", len(dec.Pix))
	}
}

func TestEncodedSizeNearPaper(t *testing.T) {
	// The paper's encoded 320x240 frames are ~10 KB. Our synthetic
	// frames at a mid quality should land in the same ballpark
	// (shape, not exact match).
	f := TestFrame(320, 240, 7)
	data, err := Encode(f, 70)
	if err != nil {
		t.Fatal(err)
	}
	kb := float64(len(data)) / 1024
	if kb < 2 || kb > 40 {
		t.Errorf("encoded frame = %.1f KB, want within [2,40] KB (paper ~10 KB)", kb)
	}
	t.Logf("encoded 320x240 frame: %.1f KB", kb)
}

func TestQualityMonotonicity(t *testing.T) {
	f := TestFrame(320, 240, 3)
	lo, err := Encode(f, 20)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Encode(f, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(hi) <= len(lo) {
		t.Errorf("higher quality should be larger: q95=%d q20=%d", len(hi), len(lo))
	}
	decLo, _ := Decode(lo)
	decHi, _ := Decode(hi)
	pLo, _ := PSNR(f, decLo)
	pHi, _ := PSNR(f, decHi)
	if pHi <= pLo {
		t.Errorf("higher quality should have higher PSNR: %.1f vs %.1f", pHi, pLo)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(&Frame{W: 10, H: 8, Pix: make([]byte, 80)}, 50); err == nil {
		t.Error("non-multiple-of-8 width should fail")
	}
	if _, err := Encode(&Frame{W: 8, H: 8, Pix: make([]byte, 10)}, 50); err == nil {
		t.Error("wrong pixel buffer length should fail")
	}
	f := TestFrame(8, 8, 0)
	if _, err := Encode(f, 0); err == nil {
		t.Error("quality 0 should fail")
	}
	if _, err := Encode(f, 101); err == nil {
		t.Error("quality 101 should fail")
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short data should fail")
	}
	if _, err := Decode(make([]byte, headerBytes)); err == nil {
		t.Error("bad magic should fail")
	}
	f := TestFrame(16, 16, 0)
	good, _ := Encode(f, 50)
	bad := append([]byte{}, good...)
	bad[5] = 0 // width 0
	if _, err := Decode(bad); err == nil {
		t.Error("zero width should fail")
	}
	bad2 := append([]byte{}, good...)
	bad2[8] = 0 // quality 0
	if _, err := Decode(bad2); err == nil {
		t.Error("zero quality should fail")
	}
	// Truncated bitstream.
	if _, err := Decode(good[:len(good)-8]); err == nil {
		t.Error("truncated bitstream should fail")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	f := TestFrame(64, 64, 11)
	a, _ := Encode(f, 60)
	b, _ := Encode(f, 60)
	if string(a) != string(b) {
		t.Error("encoder must be deterministic")
	}
}

func TestFrameAccessors(t *testing.T) {
	f := NewFrame(8, 8)
	f.Set(3, 2, 99)
	if f.At(3, 2) != 99 {
		t.Error("Set/At broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewFrame(0,0) should panic")
		}
	}()
	NewFrame(0, 0)
}

func TestPSNRIdentical(t *testing.T) {
	f := TestFrame(16, 16, 0)
	p, err := PSNR(f, f)
	if err != nil || !math.IsInf(p, 1) {
		t.Errorf("PSNR(f,f) = %v, %v; want +Inf", p, err)
	}
	g := TestFrame(8, 8, 0)
	if _, err := PSNR(f, g); err == nil {
		t.Error("size mismatch should fail")
	}
}

// Property: random small frames round-trip without decoder errors and
// with bounded size expansion.
func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(seed int64, qRaw uint8) bool {
		q := int(qRaw%100) + 1
		f := TestFrame(32, 24, seed%1000)
		data, err := Encode(f, q)
		if err != nil {
			return false
		}
		dec, err := Decode(data)
		if err != nil {
			return false
		}
		return dec.W == 32 && dec.H == 24
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFastDCTMatchesReference(t *testing.T) {
	// Property: the AAN path equals the direct transform to floating
	// point accuracy on arbitrary blocks.
	state := int64(12345)
	for trial := 0; trial < 200; trial++ {
		var a, b [64]float64
		for i := range a {
			state = state*6364136223846793005 + 1442695040888963407
			v := float64(int32(state>>33)%256) - 128
			a[i], b[i] = v, v
		}
		fdct(&a)
		fdctFast(&b)
		for i := range a {
			d := a[i] - b[i]
			if d < -1e-6 || d > 1e-6 {
				t.Fatalf("trial %d coef %d: direct %g vs fast %g", trial, i, a[i], b[i])
			}
		}
	}
}

func TestAANScaleConsistency(t *testing.T) {
	// The per-frequency ratio must be constant across all basis inputs;
	// verify the full 1-D matrices agree after correction.
	for x := 0; x < 8; x++ {
		var v [8]float64
		v[x] = 1
		aan1D(v[:], 1)
		for u := 0; u < 8; u++ {
			ref := dctScale[u] * cosTable[u][x]
			got := v[u] / aanScale1D[u]
			if d := got - ref; d < -1e-9 || d > 1e-9 {
				t.Fatalf("basis %d freq %d: %g vs %g", x, u, got, ref)
			}
		}
	}
}

func BenchmarkDCTDirect(b *testing.B) {
	var block [64]float64
	for i := range block {
		block[i] = float64(i%17) - 8
	}
	for i := 0; i < b.N; i++ {
		blk := block
		fdct(&blk)
	}
}

func BenchmarkDCTFastAAN(b *testing.B) {
	var block [64]float64
	for i := range block {
		block[i] = float64(i%17) - 8
	}
	for i := 0; i < b.N; i++ {
		blk := block
		fdctFast(&blk)
	}
}
