package mjpeg

import "testing"

// FuzzDecode hardens the decoder against corrupt bitstreams: any input
// must yield a frame or an error, never a panic or out-of-bounds access.
func FuzzDecode(f *testing.F) {
	good, err := Encode(TestFrame(16, 16, 1), 50)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:len(good)/2])
	color, err := EncodeColor(testColorFrame(16, 16, 1), 50)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(color)
	f.Fuzz(func(t *testing.T, data []byte) {
		if frame, err := Decode(data); err == nil {
			if frame.W*frame.H != len(frame.Pix) {
				t.Fatalf("inconsistent decoded frame %dx%d with %d pixels", frame.W, frame.H, len(frame.Pix))
			}
		}
		if cf, err := DecodeColor(data); err == nil {
			if len(cf.Y) != cf.W*cf.H {
				t.Fatalf("inconsistent color frame")
			}
		}
	})
}
