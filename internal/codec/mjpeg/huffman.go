package mjpeg

import (
	"container/heap"
	"fmt"
	"sort"
)

// The entropy layer uses JPEG-style symbol alphabets:
//
//   - DC: the size category (0..11) of the DPCM difference, followed by
//     that many magnitude bits.
//   - AC: EOB (0x00), ZRL (0xF0, a run of 16 zeros) and (run<<4 | size)
//     for runs 0..15 and sizes 1..10, followed by magnitude bits.
//
// Codes are canonical Huffman codes built deterministically at init from
// a fixed frequency prior (shorter codes for the symbols that dominate
// typical quantized DCT data). The bitstream therefore needs no embedded
// tables.

const (
	symEOB = 0x00
	symZRL = 0xF0
)

// huffCode is one symbol's code.
type huffCode struct {
	bits uint32
	n    uint8
}

// huffTable is a canonical Huffman code over a byte alphabet: encode
// lookup plus a decode tree.
type huffTable struct {
	codes map[byte]huffCode
	root  *huffNode
}

type huffNode struct {
	child [2]*huffNode
	sym   byte
	leaf  bool
}

// buildItem is a heap entry during Huffman construction.
type buildItem struct {
	weight int64
	order  int // deterministic tie-break: insertion order
	node   *huffNode
}

type buildHeap []buildItem

func (h buildHeap) Len() int { return len(h) }
func (h buildHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h buildHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *buildHeap) Push(x any)   { *h = append(*h, x.(buildItem)) }
func (h *buildHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// newHuffTable builds a deterministic canonical Huffman code for the
// given symbol weights (all symbols present in the map are codable).
func newHuffTable(weights map[byte]int64) *huffTable {
	syms := make([]byte, 0, len(weights))
	for s := range weights {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })

	// Build the Huffman tree to get code lengths.
	h := make(buildHeap, 0, len(syms))
	order := 0
	for _, s := range syms {
		h = append(h, buildItem{weight: weights[s], order: order, node: &huffNode{sym: s, leaf: true}})
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(buildItem)
		b := heap.Pop(&h).(buildItem)
		heap.Push(&h, buildItem{
			weight: a.weight + b.weight,
			order:  order,
			node:   &huffNode{child: [2]*huffNode{a.node, b.node}},
		})
		order++
	}
	lengths := make(map[byte]int)
	var walk func(n *huffNode, depth int)
	walk = func(n *huffNode, depth int) {
		if n.leaf {
			if depth == 0 {
				depth = 1 // single-symbol alphabet still needs one bit
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.child[0], depth+1)
		walk(n.child[1], depth+1)
	}
	walk(h[0].node, 0)

	// Canonicalize: sort by (length, symbol) and assign sequential codes.
	sort.Slice(syms, func(i, j int) bool {
		if lengths[syms[i]] != lengths[syms[j]] {
			return lengths[syms[i]] < lengths[syms[j]]
		}
		return syms[i] < syms[j]
	})
	t := &huffTable{codes: make(map[byte]huffCode, len(syms)), root: &huffNode{}}
	code := uint32(0)
	prevLen := 0
	for _, s := range syms {
		l := lengths[s]
		code <<= uint(l - prevLen)
		prevLen = l
		t.codes[s] = huffCode{bits: code, n: uint8(l)}
		t.insert(code, l, s)
		code++
	}
	return t
}

// insert adds a code to the decode tree.
func (t *huffTable) insert(code uint32, n int, sym byte) {
	node := t.root
	for i := n - 1; i >= 0; i-- {
		b := (code >> uint(i)) & 1
		if node.child[b] == nil {
			node.child[b] = &huffNode{}
		}
		node = node.child[b]
	}
	node.sym = sym
	node.leaf = true
}

// encode writes the symbol's code.
func (t *huffTable) encode(w *bitWriter, sym byte) error {
	c, ok := t.codes[sym]
	if !ok {
		return fmt.Errorf("mjpeg: symbol %#x not in Huffman alphabet", sym)
	}
	w.writeBits(c.bits, int(c.n))
	return nil
}

// decode walks the tree bit by bit.
func (t *huffTable) decode(r *bitReader) (byte, error) {
	node := t.root
	for !node.leaf {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		node = node.child[b]
		if node == nil {
			return 0, errBitstream
		}
	}
	return node.sym, nil
}

// dcTable and acTable are the package's fixed entropy codes.
var (
	dcTable *huffTable
	acTable *huffTable
)

func init() {
	// DC size categories: small differences dominate.
	dcW := make(map[byte]int64)
	for s := 0; s <= 11; s++ {
		dcW[byte(s)] = int64(1) << uint(14-s)
	}
	dcTable = newHuffTable(dcW)

	// AC (run, size): EOB and short runs with small sizes dominate.
	acW := make(map[byte]int64)
	acW[symEOB] = 1 << 20
	acW[symZRL] = 1 << 10
	for run := 0; run <= 15; run++ {
		for size := 1; size <= 10; size++ {
			w := int64(1) << uint(18-size)
			w >>= uint(run) // longer runs are rarer
			if w < 1 {
				w = 1
			}
			acW[byte(run<<4|size)] = w
		}
	}
	acTable = newHuffTable(acW)
}

// magnitudeCategory returns the JPEG size category of v: the number of
// bits needed for |v|.
func magnitudeCategory(v int) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// encodeMagnitude writes v's JPEG-style magnitude bits: positive values
// as-is, negative values one's-complemented in `size` bits.
func encodeMagnitude(w *bitWriter, v, size int) {
	if size == 0 {
		return
	}
	u := v
	if v < 0 {
		u = v + (1 << uint(size)) - 1
	}
	w.writeBits(uint32(u), size)
}

// decodeMagnitude reads size magnitude bits back into a signed value.
func decodeMagnitude(r *bitReader, size int) (int, error) {
	if size == 0 {
		return 0, nil
	}
	u, err := r.readBits(size)
	if err != nil {
		return 0, err
	}
	v := int(u)
	if v < 1<<uint(size-1) {
		v -= (1 << uint(size)) - 1
	}
	return v, nil
}
