package mjpeg

import "fmt"

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur int // bits in cur
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.cur <<= 1
		if v&(1<<uint(i)) != 0 {
			w.cur |= 1
		}
		w.nCur++
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nCur = 0, 0
		}
	}
}

// flush pads the last partial byte with ones (like JPEG) and returns the
// buffer.
func (w *bitWriter) flush() []byte {
	if w.nCur > 0 {
		w.cur = w.cur<<uint(8-w.nCur) | (1<<uint(8-w.nCur) - 1)
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	buf []byte
	pos int // byte position
	bit int // bit position within buf[pos], 0 = MSB
}

// errBitstream reports truncated or corrupt input.
var errBitstream = fmt.Errorf("mjpeg: truncated or corrupt bitstream")

// readBit returns the next bit.
func (r *bitReader) readBit() (uint32, error) {
	if r.pos >= len(r.buf) {
		return 0, errBitstream
	}
	b := (r.buf[r.pos] >> uint(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return uint32(b), nil
}

// readBits returns the next n bits MSB-first.
func (r *bitReader) readBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}
