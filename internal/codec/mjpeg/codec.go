package mjpeg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// magic identifies this package's frame bitstream.
var magic = [4]byte{'F', 'J', 'P', 'G'}

// headerBytes is the encoded-frame header: magic, width, height,
// quality.
const headerBytes = 4 + 2 + 2 + 1

// Encode compresses a frame at the given quality (1..100). The frame
// dimensions must be multiples of 8 (the paper's 320×240 is).
func Encode(f *Frame, quality int) ([]byte, error) {
	if f.W%8 != 0 || f.H%8 != 0 {
		return nil, fmt.Errorf("mjpeg: frame size %dx%d not a multiple of 8", f.W, f.H)
	}
	if len(f.Pix) != f.W*f.H {
		return nil, fmt.Errorf("mjpeg: pixel buffer length %d != %d", len(f.Pix), f.W*f.H)
	}
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("mjpeg: quality %d outside [1,100]", quality)
	}
	q := quantTable(quality)
	w := &bitWriter{buf: make([]byte, 0, f.W*f.H/6)}

	hdr := make([]byte, headerBytes)
	copy(hdr, magic[:])
	binary.BigEndian.PutUint16(hdr[4:6], uint16(f.W))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(f.H))
	hdr[8] = byte(quality)

	prevDC := 0
	var block [64]float64
	var coef [64]int
	for by := 0; by < f.H; by += 8 {
		for bx := 0; bx < f.W; bx += 8 {
			// Level shift and transform.
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					block[y*8+x] = float64(f.Pix[(by+y)*f.W+bx+x]) - 128
				}
			}
			fdctFast(&block)
			for i := 0; i < 64; i++ {
				coef[i] = int(math.Round(block[zigzag[i]] / float64(q[zigzag[i]])))
			}
			if err := encodeBlock(w, &coef, &prevDC); err != nil {
				return nil, err
			}
		}
	}
	return append(hdr, w.flush()...), nil
}

// encodeBlock entropy-codes one zigzag-ordered quantized block.
func encodeBlock(w *bitWriter, coef *[64]int, prevDC *int) error {
	diff := coef[0] - *prevDC
	*prevDC = coef[0]
	size := magnitudeCategory(diff)
	if size > 11 {
		return fmt.Errorf("mjpeg: DC difference %d out of range", diff)
	}
	if err := dcTable.encode(w, byte(size)); err != nil {
		return err
	}
	encodeMagnitude(w, diff, size)

	run := 0
	for i := 1; i < 64; i++ {
		if coef[i] == 0 {
			run++
			continue
		}
		for run > 15 {
			if err := acTable.encode(w, symZRL); err != nil {
				return err
			}
			run -= 16
		}
		size := magnitudeCategory(coef[i])
		if size > 10 {
			return fmt.Errorf("mjpeg: AC coefficient %d out of range", coef[i])
		}
		if err := acTable.encode(w, byte(run<<4|size)); err != nil {
			return err
		}
		encodeMagnitude(w, coef[i], size)
		run = 0
	}
	if run > 0 {
		if err := acTable.encode(w, symEOB); err != nil {
			return err
		}
	}
	return nil
}

// Decode reconstructs a frame from an Encode bitstream.
func Decode(data []byte) (*Frame, error) {
	if len(data) < headerBytes {
		return nil, fmt.Errorf("mjpeg: %d bytes shorter than header", len(data))
	}
	if [4]byte(data[0:4]) != magic {
		return nil, fmt.Errorf("mjpeg: bad magic %q", data[0:4])
	}
	w := int(binary.BigEndian.Uint16(data[4:6]))
	h := int(binary.BigEndian.Uint16(data[6:8]))
	quality := int(data[8])
	if w == 0 || h == 0 || w%8 != 0 || h%8 != 0 {
		return nil, fmt.Errorf("mjpeg: invalid dimensions %dx%d", w, h)
	}
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("mjpeg: invalid quality %d", quality)
	}
	q := quantTable(quality)
	f := NewFrame(w, h)
	r := &bitReader{buf: data[headerBytes:]}

	prevDC := 0
	var coef [64]int
	var block [64]float64
	for by := 0; by < h; by += 8 {
		for bx := 0; bx < w; bx += 8 {
			if err := decodeBlock(r, &coef, &prevDC); err != nil {
				return nil, err
			}
			for i := 0; i < 64; i++ {
				block[zigzag[i]] = float64(coef[i] * q[zigzag[i]])
			}
			idct(&block)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					v := math.Round(block[y*8+x]) + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					f.Pix[(by+y)*w+bx+x] = byte(v)
				}
			}
		}
	}
	return f, nil
}

// decodeBlock reverses encodeBlock into zigzag order.
func decodeBlock(r *bitReader, coef *[64]int, prevDC *int) error {
	for i := range coef {
		coef[i] = 0
	}
	sizeSym, err := dcTable.decode(r)
	if err != nil {
		return err
	}
	diff, err := decodeMagnitude(r, int(sizeSym))
	if err != nil {
		return err
	}
	*prevDC += diff
	coef[0] = *prevDC

	i := 1
	for i < 64 {
		sym, err := acTable.decode(r)
		if err != nil {
			return err
		}
		if sym == symEOB {
			break
		}
		if sym == symZRL {
			i += 16
			continue
		}
		run, size := int(sym>>4), int(sym&0x0F)
		i += run
		if i >= 64 {
			return errBitstream
		}
		v, err := decodeMagnitude(r, size)
		if err != nil {
			return err
		}
		coef[i] = v
		i++
	}
	return nil
}
