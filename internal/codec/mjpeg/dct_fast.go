package mjpeg

import "math"

// Fast 8-point DCT after Arai, Agui and Nakajima (AAN): 5
// multiplications and 29 additions per 1-D transform instead of the 64
// multiply-accumulates of the direct form. The AAN butterfly computes a
// per-frequency-scaled DCT; the correction factors that map its output
// onto this package's reference fdct normalization are derived
// numerically at init from the two transforms' 1-D matrices (and
// checked for consistency), so the fast path is exactly the reference
// transform up to floating-point rounding — TestFastDCTMatchesReference
// enforces that.

// AAN butterfly constants, computed exactly (truncated decimal literals
// cost ~1e-8 relative accuracy, which the equivalence test rejects).
var (
	aanC4 = math.Cos(math.Pi / 4)                       // 1/sqrt(2)
	aanZ5 = math.Cos(3 * math.Pi / 8)                   // cos(3π/8)
	aanC2 = math.Cos(math.Pi/8) - math.Cos(3*math.Pi/8) // c1 - c3
	aanC6 = math.Cos(math.Pi/8) + math.Cos(3*math.Pi/8) // c1 + c3
)

// aan1D transforms one row of 8 values in place (stride-able).
func aan1D(d []float64, stride int) {
	i := func(k int) int { return k * stride }
	tmp0 := d[i(0)] + d[i(7)]
	tmp7 := d[i(0)] - d[i(7)]
	tmp1 := d[i(1)] + d[i(6)]
	tmp6 := d[i(1)] - d[i(6)]
	tmp2 := d[i(2)] + d[i(5)]
	tmp5 := d[i(2)] - d[i(5)]
	tmp3 := d[i(3)] + d[i(4)]
	tmp4 := d[i(3)] - d[i(4)]

	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	d[i(0)] = tmp10 + tmp11
	d[i(4)] = tmp10 - tmp11
	z1 := (tmp12 + tmp13) * aanC4
	d[i(2)] = tmp13 + z1
	d[i(6)] = tmp13 - z1

	tmp10 = tmp4 + tmp5
	tmp11 = tmp5 + tmp6
	tmp12 = tmp6 + tmp7
	z5 := (tmp10 - tmp12) * aanZ5
	z2 := aanC2*tmp10 + z5
	z4 := aanC6*tmp12 + z5
	z3 := tmp11 * aanC4
	z11 := tmp7 + z3
	z13 := tmp7 - z3
	d[i(5)] = z13 + z2
	d[i(3)] = z13 - z2
	d[i(1)] = z11 + z4
	d[i(7)] = z11 - z4
}

// aanCorrect[v*8+u] maps raw AAN output onto the reference fdct
// normalization; filled in by init below.
var aanCorrect [64]float64

// aanScale1D holds the per-frequency 1-D ratio raw-AAN / reference.
var aanScale1D [8]float64

func init() {
	// Derive the 1-D transform matrices numerically: columns are the
	// transforms of unit vectors.
	var ref, aan [8][8]float64
	for x := 0; x < 8; x++ {
		var v [8]float64
		v[x] = 1
		// Reference: out[u] = dctScale[u] * Σ v[x]·cos((2x+1)uπ/16).
		for u := 0; u < 8; u++ {
			ref[u][x] = dctScale[u] * cosTable[u][x]
		}
		aan1D(v[:], 1)
		for u := 0; u < 8; u++ {
			aan[u][x] = v[u]
		}
	}
	for u := 0; u < 8; u++ {
		// The ratio must be constant across x; take it from a column
		// where the reference is comfortably non-zero.
		for x := 0; x < 8; x++ {
			if r := ref[u][x]; r > 1e-9 || r < -1e-9 {
				aanScale1D[u] = aan[u][x] / r
				break
			}
		}
	}
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			aanCorrect[v*8+u] = 1 / (aanScale1D[v] * aanScale1D[u])
		}
	}
}

// fdctFast performs the forward 8×8 DCT via AAN butterflies plus the
// correction multiply, matching fdct up to floating-point rounding.
func fdctFast(block *[64]float64) {
	for y := 0; y < 8; y++ {
		aan1D(block[y*8:y*8+8], 1)
	}
	for x := 0; x < 8; x++ {
		aan1D(block[x:], 8)
	}
	for i := 0; i < 64; i++ {
		block[i] *= aanCorrect[i]
	}
}
