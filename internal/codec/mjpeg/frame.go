// Package mjpeg implements the Motion-JPEG-style intra-frame codec used
// by the paper's first benchmark application: a baseline JPEG-like
// transform codec for 8-bit grayscale frames (the paper's decoded frames
// are 320×240 at 76.8 KB — exactly one byte per pixel). Each frame is
// coded independently: 8×8 blocks are DCT-transformed, quantized with a
// quality-scaled luminance table, zigzag-scanned, DC-DPCM and AC
// run-length coded, and entropy-coded with a canonical Huffman code
// built deterministically at init. The bitstream is this package's own
// (not ITU T.81 compatible), but the codec exercises the same pipeline
// stages — split, transform, entropy code, merge — that the paper's
// MJPEG process network is built from.
package mjpeg

import (
	"fmt"
	"math"
)

// Frame is an 8-bit grayscale image.
type Frame struct {
	W, H int
	Pix  []byte // row-major, len = W*H
}

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("mjpeg: invalid frame size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y).
func (f *Frame) At(x, y int) byte { return f.Pix[y*f.W+x] }

// Set writes the pixel at (x, y).
func (f *Frame) Set(x, y int, v byte) { f.Pix[y*f.W+x] = v }

// TestFrame synthesizes frame i of a deterministic video-like sequence:
// a diagonal gradient, a moving bright square, and hash-based texture
// noise. It stands in for the paper's proprietary input video (see
// DESIGN.md substitutions) while giving the codec realistic structure.
func TestFrame(w, h int, i int64) *Frame {
	f := NewFrame(w, h)
	sq := w / 8
	if h/8 < sq {
		sq = h / 8
	}
	if sq < 1 {
		sq = 1
	}
	mod := func(a, m int64) int {
		r := a % m
		if r < 0 {
			r += m
		}
		return int(r)
	}
	sx := mod(i*7, int64(w-sq+1))
	sy := mod(i*3, int64(h-sq+1))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := mod(int64(x+y)+i, 256)
			// Texture noise, deterministic in (x, y, i).
			n := uint64(x)*1099511628211 ^ uint64(y)*14695981039346656037 ^ uint64(i)*2654435761
			n ^= n >> 29
			v = (v + int(n%23)) % 256
			if x >= sx && x < sx+sq && y >= sy && y < sy+sq {
				v = 240
			}
			f.Pix[y*w+x] = byte(v)
		}
	}
	return f
}

// PSNR returns the peak signal-to-noise ratio between two equally sized
// frames in dB (+Inf for identical frames).
func PSNR(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("mjpeg: PSNR size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var sum float64
	for i := range a.Pix {
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		sum += d * d
	}
	if sum == 0 {
		return math.Inf(1), nil
	}
	mse := sum / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse), nil
}
