package mjpeg

import (
	"math"
	"testing"
)

// testColorFrame synthesizes a deterministic color pattern.
func testColorFrame(w, h int, seed int64) *ColorFrame {
	rgb := make([]byte, 3*w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			rgb[3*i] = byte((x*3 + int(seed)) % 256)
			rgb[3*i+1] = byte((y*5 + int(seed)*7) % 256)
			rgb[3*i+2] = byte(((x + y) * 2) % 256)
		}
	}
	f, err := FromRGB(rgb, w, h)
	if err != nil {
		panic(err)
	}
	return f
}

func TestColorFrameAllocation(t *testing.T) {
	f := NewColorFrame(32, 16)
	if len(f.Y) != 512 || len(f.Cb) != 128 || len(f.Cr) != 128 {
		t.Errorf("plane sizes %d/%d/%d", len(f.Y), len(f.Cb), len(f.Cr))
	}
	defer func() {
		if recover() == nil {
			t.Error("odd dimensions should panic")
		}
	}()
	NewColorFrame(3, 4)
}

func TestChromaQuantTableScaling(t *testing.T) {
	q50 := chromaQuantTable(50)
	if q50 != baseChromaQuant {
		t.Error("quality 50 must reproduce the base chroma table")
	}
	q90 := chromaQuantTable(90)
	for i := range q90 {
		if q90[i] > q50[i] {
			t.Fatal("higher quality must not coarsen quantization")
		}
	}
}

func TestColorEncodeDecodeRoundTrip(t *testing.T) {
	f := testColorFrame(64, 48, 3)
	data, err := EncodeColor(f, 80)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeColor(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 64 || dec.H != 48 {
		t.Fatalf("decoded %dx%d", dec.W, dec.H)
	}
	// Luma plane PSNR against the original.
	var sum float64
	for i := range f.Y {
		d := float64(int(f.Y[i]) - int(dec.Y[i]))
		sum += d * d
	}
	psnr := 10 * math.Log10(255*255/(sum/float64(len(f.Y))+1e-9))
	if psnr < 28 {
		t.Errorf("luma PSNR = %.1f dB, want >= 28", psnr)
	}
}

func TestColorQualityTradesSize(t *testing.T) {
	f := testColorFrame(64, 48, 9)
	lo, err := EncodeColor(f, 15)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := EncodeColor(f, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(hi) <= len(lo) {
		t.Errorf("q95 (%dB) should exceed q15 (%dB)", len(hi), len(lo))
	}
}

func TestColorValidation(t *testing.T) {
	f := testColorFrame(64, 48, 1)
	if _, err := EncodeColor(f, 0); err == nil {
		t.Error("bad quality should fail")
	}
	bad := &ColorFrame{W: 20, H: 20, Y: make([]byte, 400), Cb: make([]byte, 100), Cr: make([]byte, 100)}
	if _, err := EncodeColor(bad, 50); err == nil {
		t.Error("non-multiple-of-16 should fail")
	}
	short := &ColorFrame{W: 32, H: 32, Y: make([]byte, 10), Cb: make([]byte, 256), Cr: make([]byte, 256)}
	if _, err := EncodeColor(short, 50); err == nil {
		t.Error("inconsistent planes should fail")
	}
	if _, err := DecodeColor([]byte{1, 2}); err == nil {
		t.Error("short data should fail")
	}
	gray, _ := Encode(TestFrame(16, 16, 0), 50)
	if _, err := DecodeColor(gray); err == nil {
		t.Error("grayscale magic should be rejected by DecodeColor")
	}
	good, _ := EncodeColor(f, 50)
	if _, err := DecodeColor(good[:len(good)-10]); err == nil {
		t.Error("truncated color bitstream should fail")
	}
}

func TestRGBConversionRoundTrip(t *testing.T) {
	// Uniform colors survive 4:2:0 and BT.601 round-trip closely.
	w, h := 16, 16
	for _, c := range [][3]byte{{255, 0, 0}, {0, 255, 0}, {0, 0, 255}, {128, 128, 128}, {255, 255, 255}} {
		rgb := make([]byte, 3*w*h)
		for i := 0; i < w*h; i++ {
			rgb[3*i], rgb[3*i+1], rgb[3*i+2] = c[0], c[1], c[2]
		}
		f, err := FromRGB(rgb, w, h)
		if err != nil {
			t.Fatal(err)
		}
		back := f.ToRGB()
		for ch := 0; ch < 3; ch++ {
			d := int(back[ch]) - int(c[ch])
			if d < -3 || d > 3 {
				t.Errorf("color %v channel %d: %d -> %d", c, ch, c[ch], back[ch])
			}
		}
	}
}

func TestFromRGBValidation(t *testing.T) {
	if _, err := FromRGB(make([]byte, 10), 16, 16); err == nil {
		t.Error("wrong RGB length should fail")
	}
}

func TestColorSmallerThanRGB(t *testing.T) {
	f := testColorFrame(128, 64, 2)
	data, err := EncodeColor(f, 60)
	if err != nil {
		t.Fatal(err)
	}
	raw := 3 * 128 * 64
	if len(data) >= raw/2 {
		t.Errorf("compressed %dB vs raw %dB: expected at least 2:1", len(data), raw)
	}
}
