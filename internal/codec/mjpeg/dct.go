package mjpeg

import "math"

// cosTable[u][x] = cos((2x+1)uπ/16), the 1-D DCT basis.
var cosTable [8][8]float64

// dctScale[u] = C(u)/2 with C(0) = 1/√2, C(u>0) = 1.
var dctScale [8]float64

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
		dctScale[u] = 0.5
	}
	dctScale[0] = 0.5 / math.Sqrt2
}

// fdct performs the forward 8×8 DCT-II in place (separable: rows then
// columns). Input values are level-shifted pixels; output are
// frequency-domain coefficients.
func fdct(block *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += block[y*8+x] * cosTable[u][x]
			}
			tmp[y*8+u] = s * dctScale[u]
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * cosTable[v][y]
			}
			block[v*8+u] = s * dctScale[v]
		}
	}
}

// idct performs the inverse 8×8 DCT-III in place, the exact inverse of
// fdct up to floating-point rounding.
func idct(block *[64]float64) {
	var tmp [64]float64
	// Columns.
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += dctScale[v] * block[v*8+u] * cosTable[v][y]
			}
			tmp[y*8+u] = s
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += dctScale[u] * tmp[y*8+u] * cosTable[u][x]
			}
			block[y*8+x] = s
		}
	}
}

// baseQuant is the standard JPEG luminance quantization table (ITU T.81
// Annex K), in natural (row-major) order.
var baseQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// quantTable scales the base table for a quality setting in [1, 100]
// using the libjpeg convention.
func quantTable(quality int) [64]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	scale := 200 - 2*quality
	if quality < 50 {
		scale = 5000 / quality
	}
	var q [64]int
	for i, b := range baseQuant {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		q[i] = v
	}
	return q
}

// zigzag maps scan position to natural block index (row-major).
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}
