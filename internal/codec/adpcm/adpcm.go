// Package adpcm implements the IMA ADPCM codec used by the paper's
// second benchmark application: a 4:1 compression of 16-bit PCM audio
// into 4-bit codes (encoder) and its exact inverse prediction (decoder).
// Blocks are self-contained: a 4-byte header carries the initial
// predictor and step index so any block decodes independently, which is
// what lets the process-network stages treat one 3 KB sample block as
// one token.
package adpcm

import (
	"encoding/binary"
	"fmt"
)

// indexTable adjusts the step index after each 4-bit code.
var indexTable = [16]int{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

// stepTable is the standard 89-entry IMA quantizer step size table.
var stepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// HeaderBytes is the per-block header size: initial predictor (int16)
// plus step index (uint8) plus padding.
const HeaderBytes = 4

// state is the shared predictor state of encoder and decoder.
type state struct {
	predictor int // current predicted sample, clamped to int16 range
	index     int // index into stepTable
}

func clampPredictor(v int) int {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

func clampIndex(v int) int {
	if v < 0 {
		return 0
	}
	if v > 88 {
		return 88
	}
	return v
}

// step runs the shared decode step: given a 4-bit code, update the
// predictor and index, returning the reconstructed sample. Encoder and
// decoder use the identical routine, which is what makes the codec
// drift-free.
func (s *state) step(code byte) int {
	st := stepTable[s.index]
	diff := st >> 3
	if code&1 != 0 {
		diff += st >> 2
	}
	if code&2 != 0 {
		diff += st >> 1
	}
	if code&4 != 0 {
		diff += st
	}
	if code&8 != 0 {
		s.predictor -= diff
	} else {
		s.predictor += diff
	}
	s.predictor = clampPredictor(s.predictor)
	s.index = clampIndex(s.index + indexTable[code])
	return s.predictor
}

// encodeSample quantizes one sample against the current state and
// advances the state exactly as the decoder will.
func (s *state) encodeSample(sample int) byte {
	st := stepTable[s.index]
	diff := sample - s.predictor
	var code byte
	if diff < 0 {
		code = 8
		diff = -diff
	}
	if diff >= st {
		code |= 4
		diff -= st
	}
	if diff >= st>>1 {
		code |= 2
		diff -= st >> 1
	}
	if diff >= st>>2 {
		code |= 1
	}
	s.step(code)
	return code
}

// EncodeBlock compresses PCM samples into a self-contained ADPCM block:
// a 4-byte header (initial predictor and index zeroed per block) plus
// one nibble per sample, low nibble first. len(samples) must be even.
func EncodeBlock(samples []int16) ([]byte, error) {
	if len(samples)%2 != 0 {
		return nil, fmt.Errorf("adpcm: sample count must be even, got %d", len(samples))
	}
	s := state{}
	out := make([]byte, HeaderBytes, HeaderBytes+len(samples)/2)
	binary.LittleEndian.PutUint16(out[0:2], uint16(int16(s.predictor)))
	out[2] = byte(s.index)
	for i := 0; i < len(samples); i += 2 {
		lo := s.encodeSample(int(samples[i]))
		hi := s.encodeSample(int(samples[i+1]))
		out = append(out, lo|hi<<4)
	}
	return out, nil
}

// DecodeBlock reconstructs the PCM samples of one block produced by
// EncodeBlock.
func DecodeBlock(block []byte) ([]int16, error) {
	if len(block) < HeaderBytes {
		return nil, fmt.Errorf("adpcm: block of %d bytes shorter than header", len(block))
	}
	s := state{
		predictor: int(int16(binary.LittleEndian.Uint16(block[0:2]))),
		index:     int(block[2]),
	}
	if s.index > 88 {
		return nil, fmt.Errorf("adpcm: corrupt header step index %d", s.index)
	}
	data := block[HeaderBytes:]
	out := make([]int16, 0, len(data)*2)
	for _, b := range data {
		out = append(out, int16(s.step(b&0x0F)))
		out = append(out, int16(s.step(b>>4)))
	}
	return out, nil
}

// CompressedSize returns the block size EncodeBlock produces for n
// samples.
func CompressedSize(n int) int { return HeaderBytes + n/2 }

// MaxReconstructionError returns the worst absolute error between the
// original and decoded samples; used by tests and the application's
// self-check.
func MaxReconstructionError(orig, decoded []int16) int {
	n := len(orig)
	if len(decoded) < n {
		n = len(decoded)
	}
	maxErr := 0
	for i := 0; i < n; i++ {
		e := int(orig[i]) - int(decoded[i])
		if e < 0 {
			e = -e
		}
		if e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}
