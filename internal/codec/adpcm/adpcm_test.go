package adpcm

import (
	"math"
	"testing"
	"testing/quick"
)

// sine synthesizes a test tone.
func sine(n int, freq, rate float64, amp int16) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(float64(amp) * math.Sin(2*math.Pi*freq*float64(i)/rate))
	}
	return out
}

func TestRoundTripSine(t *testing.T) {
	orig := sine(2048, 440, 48000, 20000)
	block, err := EncodeBlock(orig)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(orig) {
		t.Fatalf("decoded %d samples, want %d", len(dec), len(orig))
	}
	// ADPCM is lossy but must track a smooth signal closely after the
	// adaptation transient.
	if e := MaxReconstructionError(orig[256:], dec[256:]); e > 2500 {
		t.Errorf("steady-state error %d too high", e)
	}
}

func TestCompressionRatio(t *testing.T) {
	// The paper's application performs 4:1 compression: 16-bit samples
	// become 4-bit codes.
	n := 1500
	block, err := EncodeBlock(sine(n, 1000, 48000, 10000))
	if err != nil {
		t.Fatal(err)
	}
	pcmBytes := n * 2
	if got := len(block); got != CompressedSize(n) {
		t.Errorf("block size %d, want %d", got, CompressedSize(n))
	}
	ratio := float64(pcmBytes) / float64(len(block)-HeaderBytes)
	if ratio != 4.0 {
		t.Errorf("compression ratio %.2f, want 4.0", ratio)
	}
}

func TestOddSampleCountRejected(t *testing.T) {
	if _, err := EncodeBlock(make([]int16, 3)); err == nil {
		t.Error("odd sample count should fail")
	}
}

func TestDecodeShortBlockRejected(t *testing.T) {
	if _, err := DecodeBlock([]byte{1, 2}); err == nil {
		t.Error("short block should fail")
	}
}

func TestDecodeCorruptIndexRejected(t *testing.T) {
	block := []byte{0, 0, 200, 0, 0x11}
	if _, err := DecodeBlock(block); err == nil {
		t.Error("corrupt step index should fail")
	}
}

func TestDeterministic(t *testing.T) {
	orig := sine(512, 220, 44100, 15000)
	a, _ := EncodeBlock(orig)
	b, _ := EncodeBlock(orig)
	if string(a) != string(b) {
		t.Error("encoder must be deterministic")
	}
}

func TestSilenceEncodesCleanly(t *testing.T) {
	orig := make([]int16, 256)
	block, err := EncodeBlock(orig)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxReconstructionError(orig, dec); e > 16 {
		t.Errorf("silence error %d, want near zero", e)
	}
}

func TestExtremeAmplitudeClamps(t *testing.T) {
	orig := make([]int16, 64)
	for i := range orig {
		if i%2 == 0 {
			orig[i] = 32767
		} else {
			orig[i] = -32768
		}
	}
	block, err := EncodeBlock(orig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlock(block); err != nil {
		t.Errorf("extreme signal must still decode: %v", err)
	}
}

// Property: every even-length sample vector round-trips to the same
// length, and the decoder is the exact inverse predictor of the encoder
// (re-encoding the decoded signal is stable).
func TestRoundTripProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw)%2 != 0 {
			raw = raw[:len(raw)-len(raw)%2]
		}
		if len(raw) == 0 {
			return true
		}
		block, err := EncodeBlock(raw)
		if err != nil {
			return false
		}
		dec, err := DecodeBlock(block)
		if err != nil {
			return false
		}
		if len(dec) != len(raw) {
			return false
		}
		// Decoded signal re-encodes to within one quantization step of
		// itself (codec stability).
		block2, err := EncodeBlock(dec)
		if err != nil {
			return false
		}
		dec2, err := DecodeBlock(block2)
		if err != nil {
			return false
		}
		return len(dec2) == len(dec)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxReconstructionErrorHelper(t *testing.T) {
	if e := MaxReconstructionError([]int16{10, -5}, []int16{7, -9}); e != 4 {
		t.Errorf("error = %d, want 4", e)
	}
	if e := MaxReconstructionError([]int16{1, 2, 3}, []int16{1}); e != 0 {
		t.Errorf("length-mismatch error = %d, want 0", e)
	}
}
