package adpcm

import "testing"

// FuzzDecodeBlock hardens the decoder against corrupt blocks.
func FuzzDecodeBlock(f *testing.F) {
	good, err := EncodeBlock(sine(64, 440, 48000, 10000))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 88, 0, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if samples, err := DecodeBlock(data); err == nil {
			if want := (len(data) - HeaderBytes) * 2; len(samples) != want {
				t.Fatalf("decoded %d samples from %d data bytes", len(samples), want)
			}
		}
	})
}
