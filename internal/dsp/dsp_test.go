package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChirp(t *testing.T) {
	c, err := Chirp(256, 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 256 {
		t.Fatalf("len = %d", len(c))
	}
	for _, v := range c {
		if v < -1.0001 || v > 1.0001 {
			t.Fatalf("chirp sample %g outside [-1,1]", v)
		}
	}
	if _, err := Chirp(0, 0.1, 0.2); err == nil {
		t.Error("zero length should fail")
	}
	if _, err := Chirp(10, 0.6, 0.2); err == nil {
		t.Error("frequency above Nyquist should fail")
	}
}

func TestFIRIdentityAndDelay(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := FIR(x, []float64{1}); !almostEqual(got, x) {
		t.Errorf("identity FIR = %v", got)
	}
	got := FIR(x, []float64{0, 1}) // one-sample delay
	want := []float64{0, 1, 2, 3, 4}
	if !almostEqual(got, want) {
		t.Errorf("delay FIR = %v, want %v", got, want)
	}
}

func TestFIRLinearity(t *testing.T) {
	prop := func(seed uint16) bool {
		n := 64
		x := make([]float64, n)
		y := make([]float64, n)
		s := uint64(seed) + 1
		for i := range x {
			s = s*6364136223846793005 + 1
			x[i] = float64(int32(s>>33)) / (1 << 30)
			s = s*6364136223846793005 + 1
			y[i] = float64(int32(s>>33)) / (1 << 30)
		}
		h := []float64{0.5, -0.25, 0.125}
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		a := FIR(sum, h)
		bx, by := FIR(x, h), FIR(y, h)
		for i := range a {
			if math.Abs(a[i]-bx[i]-by[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatchedFilterPeaksAtPulse(t *testing.T) {
	pulse, err := Chirp(64, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	const delay = 300
	sig, err := AddEchoes(1024, pulse, []int{delay}, []float64{1}, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	mf := MatchedFilter(sig, pulse)
	env := Envelope(mf, 8)
	peak := PeakCell(env)
	want := delay + len(pulse) - 1
	if peak < want-4 || peak > want+4 {
		t.Errorf("matched-filter peak at %d, want near %d", peak, want)
	}
}

func TestCACFARDetectsPlantedTarget(t *testing.T) {
	pulse, _ := Chirp(64, 0.05, 0.2)
	sig, err := AddEchoes(2048, pulse, []int{700, 1400}, []float64{1, 0.8}, 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	env := Envelope(MatchedFilter(sig, pulse), 8)
	dets, err := CACFAR(env, 8, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	found1, found2 := false, false
	for _, d := range dets {
		if d.Cell >= 700+55 && d.Cell <= 700+75 {
			found1 = true
		}
		if d.Cell >= 1400+55 && d.Cell <= 1400+75 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Errorf("targets at 700/1400 not both detected: %v %v (dets %d)", found1, found2, len(dets))
	}
}

func TestCACFARNoTargetFewFalseAlarms(t *testing.T) {
	pulse, _ := Chirp(64, 0.05, 0.2)
	sig, err := AddEchoes(4096, pulse, nil, nil, 0.05, 13)
	if err != nil {
		t.Fatal(err)
	}
	env := Envelope(MatchedFilter(sig, pulse), 8)
	dets, err := CACFAR(env, 8, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) > 8 {
		t.Errorf("%d false alarms in pure noise, want few", len(dets))
	}
}

func TestCACFARValidation(t *testing.T) {
	if _, err := CACFAR(nil, -1, 4, 3); err == nil {
		t.Error("negative guard should fail")
	}
	if _, err := CACFAR(nil, 0, 0, 3); err == nil {
		t.Error("zero train should fail")
	}
	if _, err := CACFAR(nil, 0, 4, 1); err == nil {
		t.Error("factor <= 1 should fail")
	}
}

func TestAddEchoesValidation(t *testing.T) {
	pulse, _ := Chirp(8, 0.1, 0.2)
	if _, err := AddEchoes(100, pulse, []int{1}, nil, 0, 1); err == nil {
		t.Error("mismatched delays/gains should fail")
	}
	if _, err := AddEchoes(100, pulse, []int{200}, []float64{1}, 0, 1); err == nil {
		t.Error("out-of-range delay should fail")
	}
}

func TestPackUnpackF64(t *testing.T) {
	x := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)}
	got, err := UnpackF64(PackF64(x))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, x) {
		t.Errorf("round trip = %v", got)
	}
	if _, err := UnpackF64([]byte{1, 2, 3}); err == nil {
		t.Error("bad length should fail")
	}
}

func TestEnvelopeMonotoneWindow(t *testing.T) {
	x := []float64{0, -3, 1, 0, 0, 2, 0}
	e1 := Envelope(x, 1)
	e3 := Envelope(x, 3)
	for i := range x {
		if e1[i] != math.Abs(x[i]) {
			t.Fatalf("window-1 envelope must be |x|")
		}
		if e3[i] < e1[i] {
			t.Fatalf("wider window cannot shrink the envelope")
		}
	}
	if got := Envelope(x, 0); got[1] != 3 {
		t.Error("window < 1 should clamp to 1")
	}
}

func TestPeakCellEmpty(t *testing.T) {
	if PeakCell(nil) != -1 {
		t.Error("empty input should return -1")
	}
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}
