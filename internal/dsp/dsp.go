// Package dsp provides the signal-processing kernels of the radar
// application (the streaming-application domain the paper's
// introduction motivates): linear-FM chirp synthesis, matched filtering
// by FIR correlation, envelope extraction and cell-averaging CFAR
// detection. Everything is deterministic float64 math so radar process
// networks are determinate, as the framework requires.
package dsp

import (
	"fmt"
	"math"
)

// Chirp synthesizes a linear-FM pulse of n samples sweeping from f0 to
// f1 (as fractions of the sample rate, 0 < f < 0.5).
func Chirp(n int, f0, f1 float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: chirp length must be positive, got %d", n)
	}
	if f0 <= 0 || f1 <= 0 || f0 >= 0.5 || f1 >= 0.5 {
		return nil, fmt.Errorf("dsp: chirp frequencies must be in (0, 0.5), got %g..%g", f0, f1)
	}
	out := make([]float64, n)
	phase := 0.0
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n)
		f := f0 + (f1-f0)*frac
		phase += 2 * math.Pi * f
		out[i] = math.Sin(phase)
	}
	return out, nil
}

// FIR filters x with coefficient vector h (direct-form convolution,
// output length = len(x)).
func FIR(x, h []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		var acc float64
		for j, c := range h {
			if k := i - j; k >= 0 {
				acc += c * x[k]
			}
		}
		out[i] = acc
	}
	return out
}

// MatchedFilter correlates x against the template: an FIR with the
// time-reversed template, the optimal detector for a known pulse in
// white noise. The output peaks len(template)-1 samples after the pulse
// start.
func MatchedFilter(x, template []float64) []float64 {
	h := make([]float64, len(template))
	for i, v := range template {
		h[len(template)-1-i] = v
	}
	return FIR(x, h)
}

// Envelope returns the magnitude envelope of x via a rectified
// moving-maximum over a window (a cheap real-signal stand-in for the
// analytic-signal magnitude).
func Envelope(x []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(x))
	for i := range x {
		m := 0.0
		for j := i - window + 1; j <= i; j++ {
			if j >= 0 {
				if v := math.Abs(x[j]); v > m {
					m = v
				}
			}
		}
		out[i] = m
	}
	return out
}

// Detection is one CFAR hit.
type Detection struct {
	Cell  int
	Value float64
	Noise float64
}

// CACFAR runs cell-averaging constant-false-alarm-rate detection: for
// each cell, the noise floor is the mean of `train` cells on each side,
// skipping `guard` cells around the cell under test; a cell exceeding
// factor × noise is a detection.
func CACFAR(x []float64, guard, train int, factor float64) ([]Detection, error) {
	if guard < 0 || train < 1 {
		return nil, fmt.Errorf("dsp: CFAR needs guard >= 0 and train >= 1, got %d/%d", guard, train)
	}
	if factor <= 1 {
		return nil, fmt.Errorf("dsp: CFAR factor must exceed 1, got %g", factor)
	}
	var dets []Detection
	for i := range x {
		var sum float64
		var n int
		for side := -1; side <= 1; side += 2 {
			for j := 1; j <= train; j++ {
				k := i + side*(guard+j)
				if k >= 0 && k < len(x) {
					sum += x[k]
					n++
				}
			}
		}
		if n < train { // not enough context at the edges
			continue
		}
		noise := sum / float64(n)
		if noise <= 0 {
			noise = 1e-12
		}
		if x[i] > factor*noise {
			dets = append(dets, Detection{Cell: i, Value: x[i], Noise: noise})
		}
	}
	return dets, nil
}

// PeakCell returns the index of the largest sample.
func PeakCell(x []float64) int {
	best, bi := math.Inf(-1), -1
	for i, v := range x {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// AddEchoes returns a noisy return signal: scaled copies of the pulse
// at the given delays plus deterministic pseudo-noise of the given
// amplitude (seeded, so process networks stay determinate).
func AddEchoes(n int, pulse []float64, delays []int, gains []float64, noiseAmp float64, seed int64) ([]float64, error) {
	if len(delays) != len(gains) {
		return nil, fmt.Errorf("dsp: %d delays vs %d gains", len(delays), len(gains))
	}
	out := make([]float64, n)
	state := uint64(seed)*2654435761 + 1
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / float64(1<<53) // [0,1)
		out[i] = noiseAmp * (2*u - 1)
	}
	for e, d := range delays {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("dsp: echo delay %d outside [0,%d)", d, n)
		}
		for i, v := range pulse {
			if d+i < n {
				out[d+i] += gains[e] * v
			}
		}
	}
	return out, nil
}

// PackF64 and UnpackF64 serialize sample vectors for token payloads.
func PackF64(x []float64) []byte {
	out := make([]byte, 8*len(x))
	for i, v := range x {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(bits >> (8 * b))
		}
	}
	return out
}

// UnpackF64 reverses PackF64.
func UnpackF64(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("dsp: payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		var bits uint64
		for j := 0; j < 8; j++ {
			bits |= uint64(b[8*i+j]) << (8 * j)
		}
		out[i] = math.Float64frombits(bits)
	}
	return out, nil
}
