package topo

import (
	"fmt"
	"hash/fnv"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// Sink receives consumer tokens, mirroring internal/apps.Sink so a
// compiled Model slots into the experiment harnesses unchanged.
type Sink func(now des.Time, tok kpn.Token)

// CompileOption configures Compile.
type CompileOption func(*compileConfig)

type compileConfig struct {
	extern map[string]func(replica int) kpn.Behavior
}

// WithExtern binds behavior factories to the named processes of an
// extern spec (ProcSpec.Kind == KindExtern) — the factories of the
// original hand-written network, keyed by process name. This is how a
// paper app round-trips through the DSL: Describe the built network,
// emit/parse the spec, Compile it with the original factories, and the
// rebuilt network is behavior-identical.
func WithExtern(factories map[string]func(replica int) kpn.Behavior) CompileOption {
	return func(cfg *compileConfig) { cfg.extern = factories }
}

// Model is a compiled Spec: the graph plus everything the ft transform
// and the sizing analysis need — boundary channel names, token sizes,
// producer/consumer PJD models and conservative per-replica envelopes.
// Build instantiates a fresh kpn.Network on every call; all builds of
// one Model share its payload memo, so replicas (and repeated runs)
// reuse the deterministic payload pipeline.
type Model struct {
	Spec *Spec
	Memo *kpn.PayloadMemo

	// InChan/OutChan are the single producer->critical and
	// critical->consumer boundary channels the ft transform arbitrates.
	InChan, OutChan string
	// InTokenBytes/OutTokenBytes are the effective token sizes on the
	// boundary channels; OutInit is the exit channel's initial fill.
	InTokenBytes, OutTokenBytes int
	OutInit                     int

	producer, consumer *ProcSpec
	extern             map[string]func(replica int) kpn.Behavior
	// chanBytes is the effective token size per channel; inBytes the
	// per-process total input size feeding the work models.
	chanBytes map[string]int
	inBytes   map[string]int
	// latency[r-1] is the summed worst-case critical-path latency for
	// replica r; envelopes add it to the producer jitter.
	latency [DefaultReplicas]des.Time
}

// Compile validates the spec and derives the model. Extern specs need
// WithExtern factories for every process.
func Compile(spec *Spec, opts ...CompileOption) (*Model, error) {
	var cfg compileConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Spec:      spec,
		Memo:      kpn.NewPayloadMemo(),
		extern:    cfg.extern,
		chanBytes: make(map[string]int, len(spec.Chans)),
		inBytes:   make(map[string]int, len(spec.Procs)),
	}
	if spec.isExtern() {
		for i := range spec.Procs {
			if cfg.extern[spec.Procs[i].Name] == nil {
				return nil, fmt.Errorf("topo: extern spec %q: no behavior bound for process %q (WithExtern)",
					spec.Name, spec.Procs[i].Name)
			}
		}
	}

	for i := range spec.Procs {
		p := &spec.Procs[i]
		switch p.Role {
		case RoleProducer:
			m.producer = p
		case RoleConsumer:
			m.consumer = p
		}
	}
	for i := range spec.Chans {
		c := &spec.Chans[i]
		bytes := c.TokenBytes
		if bytes == 0 {
			bytes = spec.Proc(c.From).PayloadBytes
		}
		m.chanBytes[c.Name] = bytes
		m.inBytes[c.To] += bytes
		from, to := spec.Proc(c.From), spec.Proc(c.To)
		if from.Role == RoleProducer && to.Role == RoleCritical {
			m.InChan, m.InTokenBytes = c.Name, bytes
		}
		if from.Role == RoleCritical && to.Role == RoleConsumer {
			m.OutChan, m.OutTokenBytes, m.OutInit = c.Name, bytes, c.Init
		}
	}

	// Worst-case one-token latency through the critical subnetwork per
	// replica: every stage fires once per stream index, so the critical
	// path is bounded by the sum of all stage worst execution times
	// (base + per-KB on the stage's total input bytes + full jitter).
	// This over-covers non-chain shapes — parallel branches sum instead
	// of max — which only inflates the envelopes: larger jitter means
	// larger caps, fills and divergence thresholds, never a false
	// conviction (the safe direction for eqs. 3–8).
	for r := 1; r <= DefaultReplicas; r++ {
		var sum des.Time
		for i := range spec.Procs {
			p := &spec.Procs[i]
			if p.Role != RoleCritical || p.Kind == KindExtern {
				continue
			}
			sum += des.Time(p.BaseUs) + des.Time(p.PerKBUs)*des.Time(m.inBytes[p.Name])/1024 + p.replicaJitter(r)
		}
		m.latency[r-1] = sum
	}
	return m, nil
}

// PeriodUs returns the stream period (producer == consumer by
// validation).
func (m *Model) PeriodUs() des.Time { return des.Time(m.producer.PeriodUs) }

// Tokens returns the workload length.
func (m *Model) Tokens() int64 { return m.Spec.Tokens }

// ProducerModel returns the producer's PJD arrival model.
func (m *Model) ProducerModel() rtc.PJD { return m.producer.pjd() }

// ConsumerModel returns the consumer's PJD service model.
func (m *Model) ConsumerModel() rtc.PJD { return m.consumer.pjd() }

// envJitter resolves one replica's envelope jitter from an explicit
// list (repeat-last, like replicaJitter).
func envJitter(list []int64, r int) des.Time {
	i := r - 1
	if i >= len(list) {
		i = len(list) - 1
	}
	if i < 0 {
		i = 0
	}
	return des.Time(list[i])
}

// InModel returns replica r's input arrival/consumption envelope: the
// producer's period with jitter covering the producer's own jitter plus
// the replica's worst critical-path latency plus the spec slack. With
// explicit Envelopes the declared jitter is used verbatim.
func (m *Model) InModel(r int) rtc.PJD {
	if env := m.Spec.Envelopes; env != nil {
		return rtc.PJD{Period: m.PeriodUs(), Jitter: envJitter(env.InJitterUs, r)}
	}
	return rtc.PJD{Period: m.PeriodUs(), Jitter: m.envelopeJitter(r)}
}

// OutModel returns replica r's output arrival envelope at the selector.
func (m *Model) OutModel(r int) rtc.PJD {
	if env := m.Spec.Envelopes; env != nil {
		return rtc.PJD{Period: m.PeriodUs(), Jitter: envJitter(env.OutJitterUs, r)}
	}
	return rtc.PJD{Period: m.PeriodUs(), Jitter: m.envelopeJitter(r)}
}

// envelopeJitter is the synthesized per-replica envelope jitter.
func (m *Model) envelopeJitter(r int) des.Time {
	if r < 1 {
		r = 1
	}
	if r > DefaultReplicas {
		r = DefaultReplicas
	}
	return des.Time(m.producer.JitterUs) + m.latency[r-1] + des.Time(m.Spec.slackUs(m.producer.PeriodUs))
}

// Build instantiates a fresh kpn.Network from the model. Synthetic
// behaviors are deterministic: producer payloads are a pure function of
// (seed, index), stage payloads a pure function of (seed, index, input
// payloads), so any two builds — replicas within a duplicated system,
// golden vs fault runs, sequential vs sharded — yield bit-identical
// fault-free streams. sink (may be nil) receives the consumer tokens of
// synthetic specs; extern specs carry their own sinks inside the bound
// behaviors and ignore it.
func (m *Model) Build(sink Sink) (*kpn.Network, error) {
	spec := m.Spec
	net := &kpn.Network{Name: spec.Name}
	for i := range spec.Procs {
		p := &spec.Procs[i]
		role, _ := roleOf(p.Role)
		factory, err := m.factory(p, sink)
		if err != nil {
			return nil, err
		}
		net.Procs = append(net.Procs, kpn.ProcessSpec{Name: p.Name, Role: role, New: factory})
	}
	for _, c := range spec.Chans {
		net.Chans = append(net.Chans, kpn.ChannelSpec{
			Name:          c.Name,
			From:          c.From,
			To:            c.To,
			Capacity:      c.Cap,
			InitialTokens: c.Init,
			TokenBytes:    m.chanBytes[c.Name],
			DelayUs:       des.Time(c.DelayUs),
		})
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// factory builds the behavior factory for one process.
func (m *Model) factory(p *ProcSpec, sink Sink) (func(replica int) kpn.Behavior, error) {
	if p.Kind == KindExtern {
		f := m.extern[p.Name]
		if f == nil {
			return nil, fmt.Errorf("topo: extern spec %q: no behavior bound for process %q", m.Spec.Name, p.Name)
		}
		return f, nil
	}
	spec := m.Spec
	stageKey := spec.Name + "/" + p.Name
	switch p.Role {
	case RoleProducer:
		gen := m.Memo.Gen(stageKey, producerGen(p.Seed, p.PayloadBytes))
		model, seed, tokens := p.pjd(), p.Seed, spec.Tokens
		return func(int) kpn.Behavior {
			return kpn.Producer(model, seed, tokens, gen)
		}, nil
	case RoleConsumer:
		model, seed, tokens := p.pjd(), p.Seed, spec.Tokens
		return func(int) kpn.Behavior {
			return kpn.Consumer(model, seed, tokens, sink)
		}, nil
	default: // critical stage or select
		base, perKB, seed := des.Time(p.BaseUs), des.Time(p.PerKBUs), p.Seed
		var f func(i int64, ins [][]byte) []byte
		if p.Kind == KindSelect {
			f = selectPayload()
		} else {
			f = stagePayload(p.Seed, p.PayloadBytes)
		}
		memo := m.Memo
		return func(replica int) kpn.Behavior {
			work := kpn.WorkModel{BaseUs: base, PerKBUs: perKB, JitterUs: p.replicaJitter(replica)}
			// Distinct rng streams per replica; payloads stay
			// replica-independent, only timing draws differ.
			return kpn.MemoStage(work, seed+int64(replica)*1000003, memo, stageKey, f)
		}, nil
	}
}

// splitmix64 is the SplitMix64 output mix — a cheap, high-quality
// deterministic byte source for synthetic payloads.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fillPayload fills n deterministic bytes from a 64-bit state.
func fillPayload(n int, state uint64) []byte {
	buf := make([]byte, n)
	var word uint64
	for j := 0; j < n; j++ {
		if j%8 == 0 {
			state = splitmix64(state)
			word = state
		}
		buf[j] = byte(word)
		word >>= 8
	}
	return buf
}

// producerGen returns the producer payload generator: pure in the
// production index.
func producerGen(seed int64, bytes int) func(i int64) []byte {
	if bytes <= 0 {
		return nil
	}
	return func(i int64) []byte {
		return fillPayload(bytes, uint64(seed)^uint64(i)*0xA24BAED4963EE407)
	}
}

// stagePayload returns the synthetic stage payload function: a pure
// deterministic function of (seed, stream index, input payloads). The
// input dependence matters — corruption of an input must change the
// output — and replica independence holds because fault-free inputs are
// themselves pure in the stream index.
func stagePayload(seed int64, bytes int) func(i int64, ins [][]byte) []byte {
	return func(i int64, ins [][]byte) []byte {
		h := fnv.New64a()
		for _, in := range ins {
			h.Write(in) //nolint:errcheck // hash.Hash never errors
		}
		return fillPayload(bytes, uint64(seed)^uint64(i)*0xD6E8FEB86659FD93^h.Sum64())
	}
}

// selectPayload returns the fan-in selector function: forward the
// payload of input (index mod #inputs) unchanged — deterministic
// arbitration keyed by the stream index so it survives stream skew.
func selectPayload() func(i int64, ins [][]byte) []byte {
	return func(i int64, ins [][]byte) []byte {
		n := int64(len(ins))
		idx := i % n
		if idx < 0 {
			idx += n
		}
		return ins[idx]
	}
}

// ApplyFaults arms the spec's fault script on a duplicated system built
// from this model: plain modes via ft.System.InjectFault, gray modes via
// the target switch's InjectGrayAt, and transients via RepairAt.
func (m *Model) ApplyFaults(sys *ft.System) {
	for i := range m.Spec.Faults {
		f := &m.Spec.Faults[i]
		mode, _ := fault.ModeByName(f.Mode)
		sw := sys.Switches[f.Replica-1]
		if mode.IsGray() {
			sw.InjectGrayAt(des.Time(f.AtUs), mode, fault.Gray{
				ExtraUs:  des.Time(f.ExtraUs),
				RampUs:   des.Time(f.RampUs),
				OnUs:     des.Time(f.OnUs),
				PeriodUs: des.Time(f.PeriodUs),
				EveryN:   f.EveryN,
				Seed:     f.Seed,
			})
		} else {
			sys.InjectFault(f.Replica, des.Time(f.AtUs), mode, des.Time(f.ExtraUs))
		}
		if f.RepairAtUs > 0 {
			sw.RepairAt(des.Time(f.RepairAtUs))
		}
	}
}

// ExternTiming carries the timing facts Describe cannot read off a bare
// kpn.Network: the workload length, the reliable-end PJD models, and
// the per-replica envelope jitters (the values the app's
// ReplicaInput/OutputModel report).
type ExternTiming struct {
	Tokens             int64
	Producer, Consumer rtc.PJD
	InJitterUs         [DefaultReplicas]des.Time
	OutJitterUs        [DefaultReplicas]des.Time
}

// Describe captures an existing hand-wired network as an extern Spec:
// same process and channel declarations (order preserved — port binding
// is declaration-ordered), every process marked KindExtern, envelopes
// pinned from t. Compile the result WithExtern the original factories
// (net.Procs[i].New) to rebuild a behavior-identical network — the
// round-trip the topobench app-identity check exercises.
func Describe(net *kpn.Network, t ExternTiming) *Spec {
	spec := &Spec{
		Name:   net.Name,
		Tokens: t.Tokens,
		Envelopes: &EnvelopeSpec{
			InJitterUs:  []int64{int64(t.InJitterUs[0]), int64(t.InJitterUs[1])},
			OutJitterUs: []int64{int64(t.OutJitterUs[0]), int64(t.OutJitterUs[1])},
		},
	}
	for _, p := range net.Procs {
		ps := ProcSpec{Name: p.Name, Role: p.Role.String(), Kind: KindExtern}
		switch p.Role {
		case kpn.RoleProducer:
			ps.PeriodUs = int64(t.Producer.Period)
			ps.JitterUs = int64(t.Producer.Jitter)
			ps.MinDistUs = int64(t.Producer.MinDist)
		case kpn.RoleConsumer:
			ps.PeriodUs = int64(t.Consumer.Period)
			ps.JitterUs = int64(t.Consumer.Jitter)
			ps.MinDistUs = int64(t.Consumer.MinDist)
		}
		spec.Procs = append(spec.Procs, ps)
	}
	for _, c := range net.Chans {
		spec.Chans = append(spec.Chans, ChanSpec{
			Name:       c.Name,
			From:       c.From,
			To:         c.To,
			Cap:        c.Capacity,
			Init:       c.InitialTokens,
			TokenBytes: c.TokenBytes,
			DelayUs:    int64(c.DelayUs),
		})
	}
	return spec
}

// Factories collects the behavior factories of a network, keyed by
// process name — the WithExtern argument for a Describe round-trip.
func Factories(net *kpn.Network) map[string]func(replica int) kpn.Behavior {
	out := make(map[string]func(replica int) kpn.Behavior, len(net.Procs))
	for i := range net.Procs {
		out[net.Procs[i].Name] = net.Procs[i].New
	}
	return out
}
