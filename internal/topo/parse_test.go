package topo

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// load reads and parses a testdata spec.
func load(t testing.TB, name string) *Spec {
	t.Helper()
	data, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(data)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return spec
}

// TestParseJSONYAMLAgree pins the two formats to one schema: the JSON
// and YAML renditions of the demo chain decode to identical specs.
func TestParseJSONYAMLAgree(t *testing.T) {
	js := load(t, "chain.json")
	ym := load(t, "chain.yaml")
	if !reflect.DeepEqual(js, ym) {
		t.Fatalf("chain.json and chain.yaml decode differently:\njson: %+v\nyaml: %+v", js, ym)
	}
	if err := js.Validate(); err != nil {
		t.Fatalf("chain spec invalid: %v", err)
	}
}

func TestParseFeedbackSpec(t *testing.T) {
	spec := load(t, "feedback.yaml")
	if err := spec.Validate(); err != nil {
		t.Fatalf("feedback spec invalid: %v", err)
	}
	if len(spec.Faults) != 1 || spec.Faults[0].Mode != "stop-all" {
		t.Fatalf("fault script lost in parsing: %+v", spec.Faults)
	}
	cycles := spec.Skeleton().Cycles()
	if len(cycles) == 0 {
		t.Fatal("feedback spec has no cycle")
	}
	for _, cy := range cycles {
		if cy.InitialTokens == 0 {
			t.Fatalf("cycle %v carries no initial tokens", cy.Channels)
		}
	}
}

// TestParseErrors: malformed input must produce an error, with enough
// context to locate the problem, and never a panic.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty spec"},
		{"blank", "  \n\t\n", "empty spec"},
		{"json truncated", `{"name": "x"`, "parse spec"},
		{"json unknown field", `{"name": "x", "tokns": 3}`, "unknown field"},
		{"json trailing garbage", `{"name": "x"} {"name": "y"}`, "trailing data"},
		{"json wrong type", `{"name": 3}`, "parse spec"},
		{"yaml unknown field", "name: x\ntokns: 3\n", "unknown field"},
		{"yaml tab indent", "name: x\nprocs:\n\t- name: p\n", "tab"},
		{"yaml duplicate key", "name: x\nname: y\n", "duplicate key"},
		{"yaml bad nesting", "name: x\n  stray: 1\n", ""},
		{"yaml unclosed flow", "procs: [1, 2\n", ""},
		{"yaml unclosed quote", "name: \"x\n", ""},
		{"yaml scalar doc", "just a scalar\n", ""},
		{"yaml deep flow", strings.Repeat("[", 500) + strings.Repeat("]", 500), "nesting"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse(%q) = %+v, want error", tc.in, spec)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error %q does not mention %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestEmitParseRoundTrip is the round-trip property: for hand-written
// and generated specs alike, Parse(Emit(s)) reproduces s exactly.
func TestEmitParseRoundTrip(t *testing.T) {
	specs := []*Spec{load(t, "chain.json"), load(t, "feedback.yaml")}
	for seed := int64(0); seed < 50; seed++ {
		specs = append(specs, Generate(seed))
	}
	for _, spec := range specs {
		data, err := Emit(spec)
		if err != nil {
			t.Fatalf("%s: emit: %v", spec.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", spec.Name, err, data)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("%s: round-trip drift:\nbefore: %+v\nafter:  %+v", spec.Name, spec, back)
		}
	}
}

// FuzzTopoParse: arbitrary input must either parse or error — never
// panic — and anything that parses must survive the Emit/Parse
// round-trip bit-exactly.
func FuzzTopoParse(f *testing.F) {
	for _, name := range []string{"chain.json", "chain.yaml", "feedback.yaml"} {
		data, err := os.ReadFile("testdata/" + name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		"", "{", "}", "null", "[]", `{"name":"x","tokens":1}`,
		"name: x\ntokens: 1\n", "a:\n  - 1\n  - b: {c: [1, 'two']}\n",
		"name: \"\\u0041\"\n", "tokens: 1e3\n", "tokens: -1\n",
		"procs:\n- name: p\n  role: producer\n",
		"# comment only\n", "---\nname: x\n", "faults: [{replica: 1}]\n",
		strings.Repeat("[", 300), "\xff\xfe", "name: 'it''s'\n",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return // rejecting is fine; panicking is the bug
		}
		out, err := Emit(spec)
		if err != nil {
			t.Fatalf("emit after successful parse: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of emitted spec: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("round-trip drift:\nin:     %q\nbefore: %+v\nafter:  %+v", data, spec, back)
		}
	})
}
