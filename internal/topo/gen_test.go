package topo

import (
	"reflect"
	"testing"
)

// genShapes are the shape labels Generate can emit.
var genShapes = []string{"chain", "tree", "diamond", "fanin-select", "feedback"}

// TestGenerateStructure sweeps 250 seeds and checks every generated
// spec structurally: Validate passes, every cycle the skeleton's cycle
// enumeration finds carries initial tokens, DeadlockRisks stays empty,
// and the spec compiles. Feedback shapes must actually contain a cycle
// — otherwise the cycle checks would pass vacuously.
func TestGenerateStructure(t *testing.T) {
	shapes := map[string]int{}
	cyclesSeen := 0
	for seed := int64(0); seed < 250; seed++ {
		spec := Generate(seed)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, spec.Shape, err)
		}
		skel := spec.Skeleton()
		cycles := skel.Cycles()
		if spec.Shape == "feedback" && len(cycles) == 0 {
			t.Errorf("seed %d: feedback shape generated no cycle", seed)
		}
		if spec.Shape != "feedback" && len(cycles) != 0 {
			t.Errorf("seed %d: %s shape generated unexpected cycle %v", seed, spec.Shape, cycles[0].Channels)
		}
		for _, cy := range cycles {
			cyclesSeen++
			if cy.InitialTokens == 0 {
				t.Errorf("seed %d: cycle %v has no initial tokens", seed, cy.Channels)
			}
		}
		if risks := skel.DeadlockRisks(); len(risks) > 0 {
			t.Errorf("seed %d: deadlock risk %v", seed, risks[0].Channels)
		}
		if _, err := Compile(spec); err != nil {
			t.Fatalf("seed %d (%s): compile: %v", seed, spec.Shape, err)
		}
		shapes[spec.Shape]++
	}
	for _, s := range genShapes {
		if shapes[s] == 0 {
			t.Errorf("shape %q never generated in 250 seeds", s)
		}
	}
	if cyclesSeen == 0 {
		t.Error("no cycles generated in 250 seeds — feedback coverage is vacuous")
	}
}

// TestGenerateDeterministic: the generator is a pure function of the
// seed, and distinct seeds actually vary the topology.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(42), Generate(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Generate(42) differs between calls:\n%+v\n%+v", a, b)
	}
	ea, _ := Emit(a)
	eb, _ := Emit(b)
	if string(ea) != string(eb) {
		t.Fatal("Generate(42) emits differently between calls")
	}
	distinct := false
	for seed := int64(0); seed < 10 && !distinct; seed++ {
		distinct = !reflect.DeepEqual(Generate(seed).Procs, a.Procs)
	}
	if !distinct {
		t.Fatal("10 different seeds all produced Generate(42)'s processes")
	}
}

// TestGenerateScenarios: the fault scripts the generator emits stay
// consistent with their scenario labels.
func TestGenerateScenarios(t *testing.T) {
	labels := map[string]int{}
	for seed := int64(0); seed < 250; seed++ {
		spec := Generate(seed)
		labels[spec.Scenario]++
		switch spec.Scenario {
		case ScenarioFaultFree:
			if len(spec.Faults) != 0 {
				t.Errorf("seed %d: fault-free scenario carries faults %+v", seed, spec.Faults)
			}
		case ScenarioCorrupt:
			if spec.Detection == nil || !spec.Detection.Value {
				t.Errorf("seed %d: corrupt scenario without a value-check policy", seed)
			}
		case ScenarioBurst:
			if len(spec.Faults) != 1 || spec.Faults[0].RepairAtUs == 0 {
				t.Errorf("seed %d: burst scenario must be a repaired transient, got %+v", seed, spec.Faults)
			}
		}
		if spec.Scenario != ScenarioFaultFree && len(spec.Faults) == 0 {
			t.Errorf("seed %d: scenario %q carries no fault script", seed, spec.Scenario)
		}
	}
	for _, s := range []string{ScenarioFaultFree, ScenarioStop, ScenarioCorrupt, ScenarioBurst} {
		if labels[s] == 0 {
			t.Errorf("scenario %q never generated in 250 seeds", s)
		}
	}
}
