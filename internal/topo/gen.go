package topo

// Seeded random-topology generator. Generate(seed) deterministically
// draws one Spec from a family of shapes — chains, fork/join trees,
// diamonds, fan-in selectors and feedback loops — with work models
// budgeted so the network is schedulable (total worst-case stage
// latency well under the stream period), every channel carrying a
// positive RTC delay bound (so any shard width can partition it), and
// every feedback loop preloaded (so kpn.DeadlockRisks stays empty).
// Each spec also draws a detection policy and a fault scenario, so a
// sweep over seeds exercises the whole detection/masking matrix on
// networks nobody hand-wired. The topobench harness in internal/exp
// property-checks every generated spec; gen_test.go pins structural
// invariants (validity, cycle preloads) across hundreds of seeds.

import (
	"fmt"
	"math/rand"

	"ftpn/internal/ft"
	"ftpn/internal/rtc"
)

// Scenario labels stamped into Spec.Scenario. The harness derives its
// per-run assertions from the fault script itself; the label is for
// bucketing reports.
const (
	ScenarioFaultFree = "faultfree"
	ScenarioStop      = "stop"    // permanent fail-silent stop (paper's model)
	ScenarioDegrade   = "degrade" // permanent rate degradation
	ScenarioDrop      = "drop"    // intermittent token loss, permanent
	ScenarioCorrupt   = "corrupt" // payload corruption, clean timing
	ScenarioBurst     = "burst"   // within-budget transient stop episodes
)

// Generate deterministically draws the spec for one seed. The result
// always passes Validate and Compile; a failure to do so is a generator
// bug (gen_test.go sweeps seeds to pin this).
func Generate(seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed*0x5851F42D4C957F2D + 0x2545F4914F6CDD1D))
	g := &builder{rng: rng, spec: &Spec{Name: fmt.Sprintf("gen-%d", seed)}}

	p := []int64{20000, 30000, 40000, 50000, 80000}[rng.Intn(5)]
	g.periodUs = p
	g.spec.Tokens = 60 + int64(rng.Intn(41))
	g.spec.SlackUs = p / 8

	// Reliable ends. Producer jitter stays under p/5 so the envelopes
	// (producer jitter + stage latency + slack) stay well under one
	// period and the analytic sizing yields small, tight bounds.
	minDist := int64(0)
	if rng.Intn(2) == 0 {
		minDist = p
	}
	g.spec.Procs = append(g.spec.Procs, ProcSpec{
		Name: "src", Role: RoleProducer, Seed: rng.Int63(),
		PeriodUs: p, JitterUs: int64(rng.Intn(int(p/5) + 1)), MinDistUs: minDist,
		PayloadBytes: 16 + rng.Intn(113),
	})

	// Critical interior by shape. Each returns the entry and exit stage
	// names; stage latency budget b per stage keeps the summed worst
	// case under p/2 (see Compile's envelope math).
	var entry, exit string
	switch g.rng.Intn(5) {
	case 0:
		g.spec.Shape = "chain"
		entry, exit = g.chain(2 + rng.Intn(5))
	case 1:
		g.spec.Shape = "tree"
		entry, exit = g.tree(2+rng.Intn(2), 1+rng.Intn(2), false)
	case 2:
		g.spec.Shape = "diamond"
		entry, exit = g.tree(2, 1, false)
	case 3:
		g.spec.Shape = "fanin-select"
		entry, exit = g.tree(2+rng.Intn(2), 1, true)
	case 4:
		g.spec.Shape = "feedback"
		entry, exit = g.feedback(3 + rng.Intn(3))
	}

	g.spec.Procs = append(g.spec.Procs, ProcSpec{
		Name: "dst", Role: RoleConsumer, Seed: rng.Int63(),
		PeriodUs: p, JitterUs: int64(rng.Intn(int(p/5) + 1)), MinDistUs: minDist,
	})
	g.connect("src", entry, 0)
	g.connect(exit, "dst", 0)
	g.spec.Chans = append(g.spec.Chans, g.feedbackChans...)

	g.scenario()
	return g.spec
}

// builder carries generator state.
type builder struct {
	rng      *rand.Rand
	spec     *Spec
	periodUs int64
	// feedbackChans are appended after all forward channels so every
	// stage's first input port is its forward stream (MemoStage takes
	// Seq from input 0).
	feedbackChans []ChanSpec
	nextChan      int
}

// stageBudget is the per-stage worst-latency budget for a shape with n
// stages: the total stays under p/2.
func (g *builder) stageBudget(n int) int64 { return g.periodUs / int64(2*n) }

// stage appends one synthetic stage with a work model inside budget b:
// base in [b/5, b/2], replica jitters under b/4 with replica 2 drawn
// wider than replica 1 (design diversity, Table 1 style).
func (g *builder) stage(name string, b int64, kind string) string {
	j1 := 1 + g.rng.Int63n(max(b/4, 2))
	j2 := j1 + g.rng.Int63n(max(b/4, 2))
	ps := ProcSpec{
		Name: name, Role: RoleCritical, Kind: kind, Seed: g.rng.Int63(),
		BaseUs:          b/5 + g.rng.Int63n(max(b/2-b/5, 2)),
		PerKBUs:         g.rng.Int63n(101),
		ReplicaJitterUs: []int64{j1, j2},
	}
	if kind != KindSelect {
		ps.PayloadBytes = 16 + g.rng.Intn(113)
	}
	g.spec.Procs = append(g.spec.Procs, ps)
	return name
}

// connect appends a forward channel with generated capacity, delay and
// nominal token size; init preloads it.
func (g *builder) connect(from, to string, init int) {
	g.spec.Chans = append(g.spec.Chans, g.chanSpec(from, to, init))
}

// chanSpec draws one channel. Every channel gets a positive DelayUs so
// the sharded partitioner can cut anywhere.
func (g *builder) chanSpec(from, to string, init int) ChanSpec {
	c := ChanSpec{
		Name:    fmt.Sprintf("ch%d", g.nextChan),
		From:    from,
		To:      to,
		Cap:     4 + g.rng.Intn(5) + init,
		Init:    init,
		DelayUs: 10 + int64(g.rng.Intn(51)),
	}
	g.nextChan++
	// Nominal token size: the writer's declared payload, or for selects
	// (which forward an input payload) the widest input seen so far.
	if w := g.spec.Proc(from); w != nil && w.PayloadBytes > 0 {
		c.TokenBytes = w.PayloadBytes
	} else {
		maxIn := 1
		for _, in := range g.spec.Chans {
			if in.To == from && in.TokenBytes > maxIn {
				maxIn = in.TokenBytes
			}
		}
		c.TokenBytes = maxIn
	}
	return c
}

// chain builds s0 -> s1 -> ... -> s(n-1).
func (g *builder) chain(n int) (entry, exit string) {
	b := g.stageBudget(n)
	for i := 0; i < n; i++ {
		g.stage(fmt.Sprintf("s%d", i), b, "")
		if i > 0 {
			g.connect(fmt.Sprintf("s%d", i-1), fmt.Sprintf("s%d", i), 0)
		}
	}
	return "s0", fmt.Sprintf("s%d", n-1)
}

// tree builds a fork/join: s0 fans out to `branches` parallel chains of
// `depth` stages, re-joined by a merge stage — a KindSelect fan-in
// selector when sel is true, a joining stage otherwise. branches=2,
// depth=1 is the classic diamond.
func (g *builder) tree(branches, depth int, sel bool) (entry, exit string) {
	n := 2 + branches*depth
	b := g.stageBudget(n)
	g.stage("s0", b, "")
	var tails []string
	for br := 0; br < branches; br++ {
		prev := "s0"
		for d := 0; d < depth; d++ {
			name := fmt.Sprintf("b%d_%d", br, d)
			g.stage(name, b, "")
			g.connect(prev, name, 0)
			prev = name
		}
		tails = append(tails, prev)
	}
	kind := ""
	if sel {
		kind = KindSelect
	}
	g.stage("join", b, kind)
	for _, t := range tails {
		g.connect(t, "join", 0)
	}
	return "s0", "join"
}

// feedback builds a chain with one preloaded back-edge from a later
// stage to an earlier one — the loop carries 1-2 initial tokens, so
// kpn.DeadlockRisks stays empty while kpn.Cycles sees a real cycle.
func (g *builder) feedback(n int) (entry, exit string) {
	entry, exit = g.chain(n)
	i := g.rng.Intn(n - 1)         // loop head
	j := i + 1 + g.rng.Intn(n-1-i) // loop tail, j > i
	init := 1 + g.rng.Intn(2)
	c := g.chanSpec(fmt.Sprintf("s%d", j), fmt.Sprintf("s%d", i), init)
	g.feedbackChans = append(g.feedbackChans, c)
	return entry, exit
}

// scenario draws the detection policy and fault script.
func (g *builder) scenario() {
	s, rng, p := g.spec, g.rng, g.periodUs
	target := 1 + rng.Intn(2)
	// Injection instant: in the second quarter of the stream, leaving
	// the longest possible post-injection window for slow detectors.
	injectAt := int64(s.Tokens/4)*p + rng.Int63n(int64(s.Tokens/4)*p)

	pick := rng.Intn(100)
	switch {
	case pick < 20:
		s.Scenario = ScenarioFaultFree
		s.Detection = g.timingPolicy()
	case pick < 55:
		s.Scenario = ScenarioStop
		s.Detection = g.timingPolicy()
		mode := []string{"stop-all", "stop-consuming", "stop-producing"}[rng.Intn(3)]
		s.Faults = []FaultSpec{{Replica: target, AtUs: injectAt, Mode: mode}}
	case pick < 65:
		s.Scenario = ScenarioDegrade
		s.Detection = g.timingPolicy()
		s.Faults = []FaultSpec{{Replica: target, AtUs: injectAt, Mode: "degrade",
			ExtraUs: int64(2+rng.Intn(3)) * p}}
	case pick < 75:
		s.Scenario = ScenarioDrop
		s.Detection = g.timingPolicy()
		s.Faults = []FaultSpec{{Replica: target, AtUs: injectAt, Mode: "drop-tokens",
			EveryN: 2 + rng.Intn(2)}}
	case pick < 85:
		s.Scenario = ScenarioCorrupt
		pol := g.timingPolicy()
		if pol == nil {
			pol = &ft.PolicySpec{Kind: ft.PolicyBinary}
		}
		pol.Value = true
		s.Detection = pol
		s.Faults = []FaultSpec{{Replica: target, AtUs: injectAt, Mode: "corrupt",
			EveryN: 3 + rng.Intn(3), Seed: uint64(rng.Int63()) | 1}}
	default:
		s.Scenario = ScenarioBurst
		// detectbench's transient recipe: two-period stall episodes 20
		// periods apart, repaired after the second; the (m,k) budget is
		// sized for a 3-period glitch so the episodes must be forgiven.
		s.Detection = g.mkBudgetPolicy(3 * p)
		s.Faults = []FaultSpec{{Replica: target, AtUs: injectAt, Mode: "burst",
			OnUs: 2 * p, PeriodUs: 20 * p, RepairAtUs: injectAt + 23*p}}
	}
}

// timingPolicy draws the timing-detection policy: nil (the inline
// paper path), explicit binary, or a small (m,k).
func (g *builder) timingPolicy() *ft.PolicySpec {
	switch g.rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return &ft.PolicySpec{Kind: ft.PolicyBinary}
	default:
		m := 1 + g.rng.Intn(2)
		return &ft.PolicySpec{Kind: ft.PolicyMK, M: m, K: 2 * (m + 1)}
	}
}

// mkBudgetPolicy sizes an (m,k) policy to forgive a glitchUs transient
// on this spec's own envelopes — the same math as exp.MKBudgetFor,
// computed here so a generated Spec is self-contained.
func (g *builder) mkBudgetPolicy(glitchUs int64) *ft.PolicySpec {
	m := 2
	if model, err := Compile(g.spec); err == nil {
		prod, cons := model.ProducerModel(), model.ConsumerModel()
		in1, in2 := model.InModel(1), model.InModel(2)
		out1, out2 := model.OutModel(1), model.OutModel(2)
		h := rtc.Horizon(prod, cons, in1, in2, out1, out2) * 8
		for _, env := range []rtc.PJD{prod, cons, in1, in2, out1, out2} {
			if b, err := rtc.StallViolationBudget(env.Upper(), glitchUs, h); err == nil && b > m {
				m = b
			}
		}
	}
	return &ft.PolicySpec{Kind: ft.PolicyMK, M: m, K: 2 * (m + 1)}
}
