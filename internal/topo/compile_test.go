package topo

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// runOnce builds the model's network around a recording sink and runs
// it (un-duplicated) to completion, returning the consumer stream.
func runOnce(t *testing.T, model *Model) []kpn.Token {
	t.Helper()
	var stream []kpn.Token
	net, err := model.Build(func(now des.Time, tok kpn.Token) {
		stream = append(stream, tok)
	})
	if err != nil {
		t.Fatal(err)
	}
	k := des.NewKernel()
	defer k.Shutdown()
	if _, err := net.Instantiate(k, kpn.Options{}); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	return stream
}

// TestCompileChain checks the compiled model's boundary discovery and
// envelope synthesis on the hand-written chain spec.
func TestCompileChain(t *testing.T) {
	spec := load(t, "chain.json")
	model, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if model.InChan != "c_in" || model.OutChan != "c_out" {
		t.Fatalf("boundary channels = %q/%q, want c_in/c_out", model.InChan, model.OutChan)
	}
	if model.PeriodUs() != 40000 || model.Tokens() != 40 {
		t.Fatalf("period/tokens = %d/%d, want 40000/40", model.PeriodUs(), model.Tokens())
	}
	for r := 1; r <= 2; r++ {
		in, out := model.InModel(r), model.OutModel(r)
		if in.Period != 40000 || out.Period != 40000 {
			t.Fatalf("replica %d envelope periods = %d/%d, want 40000", r, in.Period, out.Period)
		}
		// The synthesized envelopes fold in the replica's critical-path
		// latency and the slack, so they must sit strictly above the
		// producer's own jitter.
		if in.Jitter <= 2000 || out.Jitter < in.Jitter {
			t.Fatalf("replica %d envelope jitters %d/%d are not conservative", r, in.Jitter, out.Jitter)
		}
	}
	// Replica 2 carries larger work-model jitters, so its envelope must
	// be strictly looser than replica 1's.
	if model.OutModel(2).Jitter <= model.OutModel(1).Jitter {
		t.Fatalf("replica 2 output jitter %d <= replica 1's %d", model.OutModel(2).Jitter, model.OutModel(1).Jitter)
	}
}

// TestCompileRunDeterministic: two un-duplicated runs of the same model
// produce token-identical streams of the full workload length.
func TestCompileRunDeterministic(t *testing.T) {
	for _, name := range []string{"chain.json", "feedback.yaml"} {
		spec := load(t, name)
		model, err := Compile(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, b := runOnce(t, model), runOnce(t, model)
		if int64(len(a)) != spec.Tokens {
			t.Fatalf("%s: consumed %d/%d tokens", name, len(a), spec.Tokens)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: runs consumed %d vs %d tokens", name, len(a), len(b))
		}
		for i := range a {
			if a[i].Seq != b[i].Seq || a[i].Hash() != b[i].Hash() || a[i].Stamp != b[i].Stamp {
				t.Fatalf("%s: token %d differs between runs: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

// TestCompileExternNeedsBindings: an extern spec without WithExtern
// bindings for every process must fail to compile.
func TestCompileExternNeedsBindings(t *testing.T) {
	spec := load(t, "chain.json")
	for i := range spec.Procs {
		spec.Procs[i].Kind = KindExtern
		spec.Procs[i].BaseUs = 0
		spec.Procs[i].PerKBUs = 0
		spec.Procs[i].ReplicaJitterUs = nil
		spec.Procs[i].PayloadBytes = 0
	}
	spec.Envelopes = &EnvelopeSpec{InJitterUs: []int64{3000}, OutJitterUs: []int64{9000}}
	if err := spec.Validate(); err != nil {
		t.Fatalf("all-extern spec should validate: %v", err)
	}
	if _, err := Compile(spec); err == nil {
		t.Fatal("Compile of an extern spec without bindings should fail")
	}
	if _, err := Compile(spec, WithExtern(map[string]func(int) kpn.Behavior{
		"src": nil, "s1": nil, "s2": nil,
	})); err == nil {
		t.Fatal("Compile with a missing extern binding should fail")
	}
}

// TestValidateRejects walks semantic errors Parse alone cannot catch.
func TestValidateRejects(t *testing.T) {
	mutate := func(f func(*Spec)) *Spec {
		spec := load(t, "chain.json")
		f(spec)
		return spec
	}
	cases := []struct {
		name string
		spec *Spec
	}{
		{"no name", mutate(func(s *Spec) { s.Name = "" })},
		{"no tokens", mutate(func(s *Spec) { s.Tokens = 0 })},
		{"bad replicas", mutate(func(s *Spec) { s.Replicas = 3 })},
		{"two producers", mutate(func(s *Spec) { s.Procs[1].Role = RoleProducer })},
		{"no consumer", mutate(func(s *Spec) { s.Procs[3].Role = RoleCritical })},
		{"unknown role", mutate(func(s *Spec) { s.Procs[1].Role = "observer" })},
		{"unknown kind", mutate(func(s *Spec) { s.Procs[1].Kind = "magic" })},
		{"producer with work model", mutate(func(s *Spec) { s.Procs[0].BaseUs = 10 })},
		{"critical with pacing", mutate(func(s *Spec) { s.Procs[1].PeriodUs = 1000 })},
		{"stage without payload", mutate(func(s *Spec) { s.Procs[1].PayloadBytes = 0; s.Chans[1].TokenBytes = 64 })},
		{"period mismatch", mutate(func(s *Spec) { s.Procs[3].PeriodUs = 50000 })},
		{"dangling channel", mutate(func(s *Spec) { s.Chans[1].To = "ghost" })},
		{"producer bypass", mutate(func(s *Spec) { s.Chans[1].To = "dst" })},
		{"no entry channel", mutate(func(s *Spec) { s.Chans[0].From = "s2" })},
		{"cycle without preload", mutate(func(s *Spec) {
			s.Chans = append(s.Chans, ChanSpec{Name: "fb", From: "s2", To: "s1", Cap: 4})
		})},
		{"unknown fault mode", mutate(func(s *Spec) {
			s.Faults = []FaultSpec{{Replica: 1, AtUs: 10, Mode: "gremlin"}}
		})},
		{"fault replica range", mutate(func(s *Spec) {
			s.Faults = []FaultSpec{{Replica: 3, AtUs: 10, Mode: "stop-all"}}
		})},
		{"burst without window", mutate(func(s *Spec) {
			s.Faults = []FaultSpec{{Replica: 1, AtUs: 10, Mode: "burst"}}
		})},
		{"repair before inject", mutate(func(s *Spec) {
			s.Faults = []FaultSpec{{Replica: 1, AtUs: 100, Mode: "stop-all", RepairAtUs: 50}}
		})},
		{"bad policy", mutate(func(s *Spec) { s.Detection.M = 9; s.Detection.K = 2 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); err == nil {
				t.Fatal("Validate accepted a broken spec")
			}
		})
	}
}
