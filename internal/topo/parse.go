package topo

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Parse decodes a Spec from JSON or a YAML subset (yaml.go), sniffing
// the format: a document whose first non-space byte is '{' is JSON.
// Decoding is strict — unknown fields are errors in both formats, so a
// typo'd key never silently vanishes. Parse performs syntax and schema
// decoding only; call Spec.Validate for semantic checks.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("topo: empty spec document")
	}
	var jsonDoc []byte
	if trimmed[0] == '{' {
		jsonDoc = trimmed
	} else {
		tree, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		// The YAML tree re-encodes as JSON and flows through the same
		// strict decoder, so both formats share one schema definition.
		jsonDoc, err = json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("topo: yaml document does not map onto the schema: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonDoc))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("topo: parse spec: %w", err)
	}
	// Trailing garbage after the document is an error.
	if dec.More() {
		return nil, fmt.Errorf("topo: trailing data after spec document")
	}
	return &spec, nil
}

// Emit renders the spec canonically: indented JSON with a trailing
// newline. Parse(Emit(s)) reproduces s exactly (the round-trip property
// test and fuzz target pin this).
func Emit(spec *Spec) ([]byte, error) {
	out, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("topo: emit spec: %w", err)
	}
	return append(out, '\n'), nil
}
