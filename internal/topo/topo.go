// Package topo is the declarative topology/scenario layer: a JSON/YAML
// schema (Spec) that compiles onto the existing kpn.Network graph plus
// conservative RTC envelopes for the ft duplication transform, and a
// seeded random-topology generator (gen.go) producing chains, trees,
// diamonds, fan-in selectors and feedback loops with deterministic
// synthetic process bodies.
//
// The paper's guarantees — divergence-bound sizing (eqs. 3–8), Lemma 1
// isolation, the detection-latency bounds — were previously only
// machine-checked on the four hand-wired apps in internal/apps. A Spec
// describes a network as data: processes with <period, jitter, delay>
// envelopes, channels with capacities/initial tokens/delay bounds, the
// critical subnetwork to duplicate, a fault script (internal/fault,
// including the gray-failure library), and a detection PolicySpec.
// Compile turns a Spec into a Model whose Build method instantiates a
// fresh kpn.Network with deterministic behaviors: every synthetic stage
// payload is a pure function of the stream index and the (equally pure)
// input payloads, so golden-stream identity checks — the backbone
// invariant of every experiment harness — keep working on generated
// networks. The topobench harness in internal/exp property-checks
// sizing, Lemma 1 and sequential-vs-sharded bit-identity over thousands
// of generated Specs.
package topo

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// Process roles (ProcSpec.Role). They mirror kpn.Role's String names.
const (
	RoleProducer = "producer"
	RoleCritical = "critical"
	RoleConsumer = "consumer"
)

// Critical-process kinds (ProcSpec.Kind).
const (
	// KindStage (the default, "") is a synthetic transform: each firing
	// reads one token from every input, computes for its work model,
	// and writes one token — whose payload is a pure deterministic
	// function of the stream index and the input payloads — to every
	// output. A stage with several outputs is a fork; with several
	// inputs, a join.
	KindStage = "stage"
	// KindSelect is a synthetic fan-in selector: each firing reads one
	// token from every input and forwards the payload of input
	// (firing mod #inputs) unchanged — deterministic arbitration that
	// keeps the stream rate and golden identity intact.
	KindSelect = "select"
	// KindExtern marks a process whose behavior is supplied at compile
	// time (Compile's WithExtern option) instead of synthesized — how a
	// hand-written app round-trips through the DSL. A spec with any
	// extern process must be all-extern and carry explicit Envelopes.
	KindExtern = "extern"
)

// Spec is the declarative description of one network plus its
// fault-tolerance scenario. It is the unit the JSON/YAML parser reads
// and the generator emits. All durations are virtual-time microseconds.
type Spec struct {
	Name string `json:"name"`
	// Tokens is the finite workload length (producer emissions).
	Tokens int64 `json:"tokens"`
	// Replicas is the duplication width of the critical subnetwork.
	// 0 means the default (2); the paper's transform — and this DSL —
	// supports exactly 2.
	Replicas int `json:"replicas,omitempty"`
	// SlackUs pads the analytic input/output envelopes beyond the
	// synthesized worst-case latency (safety margin, like the apps'
	// +5ms). 0 means period/8.
	SlackUs int64 `json:"slack_us,omitempty"`
	// Shape and Scenario are free-form labels the generator stamps
	// ("chain", "diamond", …; "stop", "corrupt", …) so reports can
	// bucket results; they carry no semantics.
	Shape    string `json:"shape,omitempty"`
	Scenario string `json:"scenario,omitempty"`

	Procs []ProcSpec `json:"procs"`
	Chans []ChanSpec `json:"chans"`

	// Envelopes overrides the synthesized replica envelopes — required
	// for (and only allowed with) extern specs, where no work models
	// exist to derive them from.
	Envelopes *EnvelopeSpec `json:"envelopes,omitempty"`
	// Detection selects the conviction policy (nil/zero = the paper's
	// inline first-violation path).
	Detection *ft.PolicySpec `json:"detection,omitempty"`
	// Faults is the injection script applied to the duplicated system.
	Faults []FaultSpec `json:"faults,omitempty"`
}

// ProcSpec declares one process. Which fields apply depends on Role:
// producers and consumers are paced by their <period, jitter, min_dist>
// PJD model; critical stages carry a work model (base + per-KB +
// per-replica jitter). Every process has a Seed feeding its private
// deterministic RNG.
type ProcSpec struct {
	Name string `json:"name"`
	Role string `json:"role"`
	// Kind refines critical processes (stage/select/extern); see the
	// Kind constants. Empty means stage for critical processes.
	Kind string `json:"kind,omitempty"`
	Seed int64  `json:"seed,omitempty"`

	// Producer/consumer pacing (rtc.PJD).
	PeriodUs  int64 `json:"period_us,omitempty"`
	JitterUs  int64 `json:"jitter_us,omitempty"`
	MinDistUs int64 `json:"min_dist_us,omitempty"`

	// PayloadBytes is the output payload size of a producer or stage.
	PayloadBytes int `json:"payload_bytes,omitempty"`

	// Critical work model (kpn.WorkModel): BaseUs + PerKBUs per input
	// kilobyte + uniform jitter in [0, ReplicaJitterUs[r-1]] — the
	// paper's "design diversity captured by different jitter values"
	// (Table 1). A short list repeats its last entry for higher
	// replicas; empty means zero jitter.
	BaseUs          int64   `json:"base_us,omitempty"`
	PerKBUs         int64   `json:"per_kb_us,omitempty"`
	ReplicaJitterUs []int64 `json:"replica_jitter_us,omitempty"`
}

// ChanSpec declares one bounded FIFO channel.
type ChanSpec struct {
	Name string `json:"name"`
	From string `json:"from"`
	To   string `json:"to"`
	// Cap is the bounded capacity (eq. 3 F_C for boundary channels).
	Cap int `json:"cap"`
	// Init pre-fills the channel (eq. 4 F_{C,0}); a feedback channel
	// needs Init >= 1 to avoid deadlock (kpn.DeadlockRisks).
	Init int `json:"init,omitempty"`
	// TokenBytes is the nominal token size for transfer-time modeling
	// and envelope math; 0 defers to the writing process's
	// payload_bytes.
	TokenBytes int `json:"token_bytes,omitempty"`
	// DelayUs gives the channel RTC delay-bound semantics and is the
	// lookahead that lets the sharded simulator cut it (PR 6).
	DelayUs int64 `json:"delay_us,omitempty"`
}

// EnvelopeSpec pins the per-replica input/output arrival-curve jitters
// used for sizing, one entry per replica (1-based; a short list repeats
// its last entry). The period is the producer's.
type EnvelopeSpec struct {
	InJitterUs  []int64 `json:"in_jitter_us"`
	OutJitterUs []int64 `json:"out_jitter_us"`
}

// FaultSpec is one scripted injection against a replica of the
// duplicated system (ft.System.InjectFault / fault.Switch.InjectGrayAt).
type FaultSpec struct {
	// Replica is the 1-based target replica.
	Replica int `json:"replica"`
	// AtUs is the virtual injection instant.
	AtUs int64 `json:"at_us"`
	// Mode is the canonical fault mode name ("stop-all",
	// "stop-consuming", "stop-producing", "degrade", "drift", "burst",
	// "drop-tokens", "corrupt" — fault.ModeByName).
	Mode string `json:"mode"`
	// ExtraUs parameterizes degrade (fixed extra delay) and drift (ramp
	// target).
	ExtraUs int64 `json:"extra_us,omitempty"`
	// Gray parameters (internal/fault.Gray).
	RampUs   int64  `json:"ramp_us,omitempty"`
	OnUs     int64  `json:"on_us,omitempty"`
	PeriodUs int64  `json:"period_us,omitempty"`
	EveryN   int    `json:"every_n,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	// RepairAtUs, when positive, repairs the switch at that instant —
	// the fault is a transient.
	RepairAtUs int64 `json:"repair_at_us,omitempty"`
}

// DefaultReplicas is the duplication width the paper's transform uses.
const DefaultReplicas = 2

// replicas returns the effective duplication width.
func (s *Spec) replicas() int {
	if s.Replicas == 0 {
		return DefaultReplicas
	}
	return s.Replicas
}

// slackUs returns the effective envelope slack.
func (s *Spec) slackUs(periodUs int64) int64 {
	if s.SlackUs > 0 {
		return s.SlackUs
	}
	return periodUs / 8
}

// roleOf maps a role string to the kpn role.
func roleOf(role string) (kpn.Role, bool) {
	switch role {
	case RoleProducer:
		return kpn.RoleProducer, true
	case RoleCritical:
		return kpn.RoleCritical, true
	case RoleConsumer:
		return kpn.RoleConsumer, true
	}
	return 0, false
}

// Proc returns the named process spec, or nil.
func (s *Spec) Proc(name string) *ProcSpec {
	for i := range s.Procs {
		if s.Procs[i].Name == name {
			return &s.Procs[i]
		}
	}
	return nil
}

// isExtern reports whether the spec binds behaviors externally (all
// processes carry KindExtern; Validate enforces all-or-none).
func (s *Spec) isExtern() bool {
	return len(s.Procs) > 0 && s.Procs[0].Kind == KindExtern
}

// pjd assembles the PJD model of a producer/consumer spec.
func (p *ProcSpec) pjd() rtc.PJD {
	return rtc.PJD{
		Period:  des.Time(p.PeriodUs),
		Jitter:  des.Time(p.JitterUs),
		MinDist: des.Time(p.MinDistUs),
	}
}

// replicaJitter returns the work-model jitter for 1-based replica r: the
// r-th entry of ReplicaJitterUs, with a short list repeating its last.
func (p *ProcSpec) replicaJitter(r int) des.Time {
	if len(p.ReplicaJitterUs) == 0 {
		return 0
	}
	i := r - 1
	if i >= len(p.ReplicaJitterUs) {
		i = len(p.ReplicaJitterUs) - 1
	}
	if i < 0 {
		i = 0
	}
	return des.Time(p.ReplicaJitterUs[i])
}

// Validate checks the spec end to end: structural soundness of the
// graph (delegating channel-level checks to kpn.Network.Validate on a
// skeleton), role wiring the ft transform accepts (one producer, one
// consumer, a non-empty critical subnetwork, single entry and exit
// boundary channels), per-role field constraints, deadlock-free cycles
// (every feedback loop carries initial tokens — kpn.DeadlockRisks), a
// well-formed detection policy, and a well-formed fault script.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("topo: spec needs a name")
	}
	if s.Tokens < 1 {
		return fmt.Errorf("topo: spec %q needs tokens >= 1, got %d", s.Name, s.Tokens)
	}
	if s.Replicas != 0 && s.Replicas != DefaultReplicas {
		return fmt.Errorf("topo: spec %q: only %d replicas are supported, got %d", s.Name, DefaultReplicas, s.Replicas)
	}
	if s.SlackUs < 0 {
		return fmt.Errorf("topo: spec %q: slack_us must be non-negative, got %d", s.Name, s.SlackUs)
	}
	if len(s.Procs) == 0 {
		return fmt.Errorf("topo: spec %q has no processes", s.Name)
	}

	// Role census + per-role field checks.
	var producer, consumer *ProcSpec
	externs, criticals := 0, 0
	for i := range s.Procs {
		p := &s.Procs[i]
		if err := p.validate(s); err != nil {
			return err
		}
		if p.Kind == KindExtern {
			externs++
		}
		switch p.Role {
		case RoleProducer:
			if producer != nil {
				return fmt.Errorf("topo: spec %q has more than one producer (%q, %q)", s.Name, producer.Name, p.Name)
			}
			producer = p
		case RoleConsumer:
			if consumer != nil {
				return fmt.Errorf("topo: spec %q has more than one consumer (%q, %q)", s.Name, consumer.Name, p.Name)
			}
			consumer = p
		case RoleCritical:
			criticals++
		}
	}
	if producer == nil || consumer == nil || criticals == 0 {
		return fmt.Errorf("topo: spec %q needs exactly one producer, one consumer and a critical subnetwork (have producer=%v consumer=%v criticals=%d)",
			s.Name, producer != nil, consumer != nil, criticals)
	}
	if externs != 0 && externs != len(s.Procs) {
		return fmt.Errorf("topo: spec %q mixes extern and synthetic processes (%d/%d extern); extern specs must be all-extern",
			s.Name, externs, len(s.Procs))
	}
	if externs != 0 {
		if s.Envelopes == nil {
			return fmt.Errorf("topo: extern spec %q needs explicit envelopes", s.Name)
		}
		if len(s.Envelopes.InJitterUs) == 0 || len(s.Envelopes.OutJitterUs) == 0 {
			return fmt.Errorf("topo: extern spec %q: envelopes need at least one in/out jitter entry", s.Name)
		}
	}
	if s.Envelopes != nil {
		for _, j := range append(append([]int64{}, s.Envelopes.InJitterUs...), s.Envelopes.OutJitterUs...) {
			if j < 0 {
				return fmt.Errorf("topo: spec %q: envelope jitters must be non-negative, got %d", s.Name, j)
			}
		}
	}
	if consumer.PeriodUs != producer.PeriodUs {
		return fmt.Errorf("topo: spec %q: consumer period %d != producer period %d (the sizing analysis assumes a single stream rate)",
			s.Name, consumer.PeriodUs, producer.PeriodUs)
	}

	// Channel-level checks on the skeleton network (unique names,
	// endpoints exist, caps, fills, delays).
	skel := s.skeleton()
	if err := skel.Validate(); err != nil {
		return fmt.Errorf("topo: spec %q: %w", s.Name, err)
	}

	// Boundary wiring the ft transform accepts, and per-process port
	// arity for the synthetic behaviors.
	inDeg := map[string]int{}
	outDeg := map[string]int{}
	entry, exit := 0, 0
	for i := range s.Chans {
		c := &s.Chans[i]
		from, to := s.Proc(c.From), s.Proc(c.To)
		inDeg[c.To]++
		outDeg[c.From]++
		switch {
		case to.Role == RoleProducer:
			return fmt.Errorf("topo: spec %q: channel %q feeds back into producer %q", s.Name, c.Name, c.To)
		case from.Role == RoleConsumer:
			return fmt.Errorf("topo: spec %q: channel %q reads out of consumer %q", s.Name, c.Name, c.From)
		case from.Role == RoleProducer && to.Role == RoleCritical:
			entry++
		case from.Role == RoleCritical && to.Role == RoleConsumer:
			exit++
		case from.Role == RoleProducer && to.Role == RoleConsumer:
			return fmt.Errorf("topo: spec %q: channel %q bypasses the critical subnetwork (producer %q -> consumer %q)",
				s.Name, c.Name, c.From, c.To)
		}
		if !s.isExtern() && c.TokenBytes == 0 && from.PayloadBytes == 0 {
			return fmt.Errorf("topo: spec %q: channel %q needs token_bytes (writer %q declares no payload_bytes)",
				s.Name, c.Name, c.From)
		}
	}
	if entry != 1 || exit != 1 {
		return fmt.Errorf("topo: spec %q needs exactly one producer->critical and one critical->consumer channel, got %d/%d",
			s.Name, entry, exit)
	}
	for i := range s.Procs {
		p := &s.Procs[i]
		switch p.Role {
		case RoleProducer:
			if inDeg[p.Name] != 0 || outDeg[p.Name] != 1 {
				return fmt.Errorf("topo: spec %q: producer %q needs 0 inputs and 1 output, got %d/%d",
					s.Name, p.Name, inDeg[p.Name], outDeg[p.Name])
			}
		case RoleConsumer:
			if inDeg[p.Name] != 1 || outDeg[p.Name] != 0 {
				return fmt.Errorf("topo: spec %q: consumer %q needs 1 input and 0 outputs, got %d/%d",
					s.Name, p.Name, inDeg[p.Name], outDeg[p.Name])
			}
		case RoleCritical:
			if inDeg[p.Name] == 0 || outDeg[p.Name] == 0 {
				return fmt.Errorf("topo: spec %q: critical process %q needs at least 1 input and 1 output, got %d/%d",
					s.Name, p.Name, inDeg[p.Name], outDeg[p.Name])
			}
		}
	}

	// Reachability: every process must see the stream (an unreachable
	// stage would block forever and starve any join it feeds).
	if err := s.checkReachable(producer.Name); err != nil {
		return err
	}

	// Every cycle must carry initial tokens (feedback preload), or the
	// network deadlocks on first firing.
	if risks := skel.DeadlockRisks(); len(risks) > 0 {
		return fmt.Errorf("topo: spec %q: cycle %v has no initial tokens (guaranteed deadlock)", s.Name, risks[0].Channels)
	}

	if s.Detection != nil {
		if err := s.Detection.Validate(); err != nil {
			return fmt.Errorf("topo: spec %q: %w", s.Name, err)
		}
	}
	for i := range s.Faults {
		if err := s.Faults[i].validate(s); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one process's fields against its role.
func (p *ProcSpec) validate(s *Spec) error {
	if _, ok := roleOf(p.Role); !ok {
		return fmt.Errorf("topo: spec %q: process %q has unknown role %q", s.Name, p.Name, p.Role)
	}
	switch p.Kind {
	case "", KindExtern:
	case KindStage, KindSelect:
		if p.Role != RoleCritical {
			return fmt.Errorf("topo: spec %q: process %q: kind %q is only valid for critical processes", s.Name, p.Name, p.Kind)
		}
	default:
		return fmt.Errorf("topo: spec %q: process %q has unknown kind %q", s.Name, p.Name, p.Kind)
	}
	if p.Kind == KindExtern {
		// Extern behaviors own their timing; pacing fields are only
		// meaningful on the producer/consumer (for sizing).
		if p.Role != RoleCritical && p.PeriodUs < 1 {
			return fmt.Errorf("topo: spec %q: extern %s %q still needs period_us for the sizing analysis", s.Name, p.Role, p.Name)
		}
		return nil
	}
	switch p.Role {
	case RoleProducer, RoleConsumer:
		if err := p.pjd().Validate(); err != nil {
			return fmt.Errorf("topo: spec %q: process %q: %w", s.Name, p.Name, err)
		}
		if p.BaseUs != 0 || p.PerKBUs != 0 || len(p.ReplicaJitterUs) != 0 {
			return fmt.Errorf("topo: spec %q: %s %q must not carry a critical work model", s.Name, p.Role, p.Name)
		}
		if p.Role == RoleProducer && p.PayloadBytes < 0 {
			return fmt.Errorf("topo: spec %q: producer %q payload_bytes must be non-negative", s.Name, p.Name)
		}
		if p.Role == RoleConsumer && p.PayloadBytes != 0 {
			return fmt.Errorf("topo: spec %q: consumer %q takes no payload_bytes", s.Name, p.Name)
		}
	case RoleCritical:
		if p.PeriodUs != 0 || p.JitterUs != 0 || p.MinDistUs != 0 {
			return fmt.Errorf("topo: spec %q: critical process %q is data-driven and takes no pacing model", s.Name, p.Name)
		}
		if p.BaseUs < 0 || p.PerKBUs < 0 {
			return fmt.Errorf("topo: spec %q: process %q work model must be non-negative", s.Name, p.Name)
		}
		for _, j := range p.ReplicaJitterUs {
			if j < 0 {
				return fmt.Errorf("topo: spec %q: process %q replica jitters must be non-negative", s.Name, p.Name)
			}
		}
		if len(p.ReplicaJitterUs) > DefaultReplicas+1 {
			return fmt.Errorf("topo: spec %q: process %q has %d replica jitters, max %d (reference + replicas)",
				s.Name, p.Name, len(p.ReplicaJitterUs), DefaultReplicas+1)
		}
		if p.Kind == KindSelect && p.PayloadBytes != 0 {
			return fmt.Errorf("topo: spec %q: select %q forwards payloads and takes no payload_bytes", s.Name, p.Name)
		}
		if p.Kind != KindSelect && p.PayloadBytes < 1 {
			return fmt.Errorf("topo: spec %q: stage %q needs payload_bytes >= 1", s.Name, p.Name)
		}
	}
	return nil
}

// validate checks one fault-script entry.
func (f *FaultSpec) validate(s *Spec) error {
	if f.Replica < 1 || f.Replica > s.replicas() {
		return fmt.Errorf("topo: spec %q: fault replica %d outside [1,%d]", s.Name, f.Replica, s.replicas())
	}
	if f.AtUs < 0 {
		return fmt.Errorf("topo: spec %q: fault at_us must be non-negative, got %d", s.Name, f.AtUs)
	}
	mode, ok := fault.ModeByName(f.Mode)
	if !ok || mode == fault.None {
		return fmt.Errorf("topo: spec %q: unknown fault mode %q", s.Name, f.Mode)
	}
	if f.ExtraUs < 0 || f.RampUs < 0 || f.OnUs < 0 || f.PeriodUs < 0 || f.EveryN < 0 {
		return fmt.Errorf("topo: spec %q: fault parameters must be non-negative", s.Name)
	}
	switch mode {
	case fault.Degrade, fault.Drift:
		if f.ExtraUs < 1 {
			return fmt.Errorf("topo: spec %q: %s fault needs extra_us >= 1", s.Name, f.Mode)
		}
	case fault.Burst:
		if f.OnUs < 1 || f.PeriodUs <= f.OnUs {
			return fmt.Errorf("topo: spec %q: burst fault needs 0 < on_us < period_us, got %d/%d", s.Name, f.OnUs, f.PeriodUs)
		}
	case fault.DropTokens, fault.Corrupt:
		if f.EveryN < 1 {
			return fmt.Errorf("topo: spec %q: %s fault needs every_n >= 1", s.Name, f.Mode)
		}
	}
	if f.RepairAtUs != 0 && f.RepairAtUs <= f.AtUs {
		return fmt.Errorf("topo: spec %q: fault repair_at_us %d must follow at_us %d", s.Name, f.RepairAtUs, f.AtUs)
	}
	return nil
}

// skeleton builds a behavior-less kpn.Network mirroring the spec's
// graph, for structural analyses (Validate, Cycles, DeadlockRisks).
// The placeholder factories satisfy kpn.Validate; they are never run.
func (s *Spec) skeleton() *kpn.Network {
	net := &kpn.Network{Name: s.Name}
	for _, p := range s.Procs {
		role, _ := roleOf(p.Role)
		net.Procs = append(net.Procs, kpn.ProcessSpec{
			Name: p.Name,
			Role: role,
			New:  func(int) kpn.Behavior { return nil },
		})
	}
	for _, c := range s.Chans {
		net.Chans = append(net.Chans, kpn.ChannelSpec{
			Name:          c.Name,
			From:          c.From,
			To:            c.To,
			Capacity:      c.Cap,
			InitialTokens: c.Init,
			TokenBytes:    c.TokenBytes,
			DelayUs:       des.Time(c.DelayUs),
		})
	}
	return net
}

// Skeleton exposes the behavior-less graph for structural tooling
// (cycle enumeration, DOT layout experiments). Mutating the result does
// not affect the spec.
func (s *Spec) Skeleton() *kpn.Network { return s.skeleton() }

// checkReachable walks forward from the producer over all channels and
// reports the first process the stream can never reach.
func (s *Spec) checkReachable(from string) error {
	adj := map[string][]string{}
	for _, c := range s.Chans {
		adj[c.From] = append(adj[c.From], c.To)
	}
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	for i := range s.Procs {
		if !seen[s.Procs[i].Name] {
			return fmt.Errorf("topo: spec %q: process %q is unreachable from producer %q", s.Name, s.Procs[i].Name, from)
		}
	}
	return nil
}
