package topo

// A hand-written YAML-subset parser. The repo is dependency-free by
// policy, so instead of a full YAML implementation the DSL accepts the
// subset a topology file actually needs — block mappings and sequences
// nested by indentation, single-line flow sequences/mappings, quoted
// and plain scalars (null/bool/int/float/string), and '#' comments —
// and rejects everything else with an error (never a panic; the
// FuzzTopoParse target pins that). The parse result is a generic
// JSON-shaped tree (map[string]any / []any / scalars) that re-encodes
// as JSON and flows through the same strict schema decoder as a JSON
// document, so both formats have identical field handling.
//
// Out of scope (parse errors, not silent misreads): anchors/aliases,
// tags, multi-document streams, block scalars (| and >), multi-line
// flow collections, and tab indentation.

import (
	"fmt"
	"strconv"
	"strings"
)

// maxYAMLDepth bounds both block and flow nesting so adversarial
// (fuzzed) documents cannot exhaust the stack.
const maxYAMLDepth = 200

// yamlLine is one significant source line: indentation, content with
// comments stripped, and the 1-based source line number for errors.
type yamlLine struct {
	indent int
	text   string
	num    int
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses a document into a generic tree.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("topo: empty yaml document")
	}
	p := &yamlParser{lines: lines}
	root, err := p.parseNode(lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("topo: yaml line %d: unexpected content %q after document (bad indentation?)", l.num, l.text)
	}
	return root, nil
}

// splitYAMLLines normalizes the source: strips comments and blank
// lines, measures indentation, rejects tabs in indentation, and skips a
// single leading document marker.
func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for num, raw := range strings.Split(src, "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("topo: yaml line %d: tab in indentation", num+1)
		}
		text := strings.TrimRight(stripComment(line[indent:]), " \t")
		if text == "" {
			continue
		}
		if text == "---" && len(out) == 0 {
			continue
		}
		out = append(out, yamlLine{indent: indent, text: text, num: num + 1})
	}
	return out, nil
}

// stripComment removes a trailing '#' comment that is outside quotes
// and either starts the content or follows whitespace.
func stripComment(s string) string {
	var inSingle, inDouble bool
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			// Honor backslash escapes inside double quotes.
			if inDouble && i > 0 && s[i-1] == '\\' {
				continue
			}
			inDouble = !inDouble
		case c == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

// parseNode parses the node starting at the current line, which must
// sit at the given indent: a block sequence, a block mapping, or a
// single flow scalar.
func (p *yamlParser) parseNode(indent, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, fmt.Errorf("topo: yaml nesting deeper than %d levels", maxYAMLDepth)
	}
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSequence(indent, depth)
	}
	if hasTopLevelColon(l.text) {
		return p.parseMapping(indent, depth)
	}
	p.pos++
	return parseFlow(l.text, l.num, depth)
}

// parseSequence parses consecutive "- item" lines at the given indent.
func (p *yamlParser) parseSequence(indent, depth int) (any, error) {
	items := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			break
		}
		rest := strings.TrimPrefix(l.text, "-")
		trimmed := strings.TrimLeft(rest, " ")
		if trimmed == "" {
			// "-" alone: the item is the nested node on deeper lines.
			p.pos++
			item, err := p.parseChild(indent, depth)
			if err != nil {
				return nil, err
			}
			items = append(items, item)
			continue
		}
		// Inline item content ("- name: x", "- 3", "- [1, 2]"): rewrite
		// the line as the item's own first line at its effective indent
		// and recurse — following deeper keys of an inline mapping then
		// parse as its siblings.
		eff := indent + (len(l.text) - len(trimmed))
		p.lines[p.pos] = yamlLine{indent: eff, text: trimmed, num: l.num}
		item, err := p.parseNode(eff, depth+1)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	return items, nil
}

// parseMapping parses consecutive "key: value" lines at the given
// indent.
func (p *yamlParser) parseMapping(indent, depth int) (any, error) {
	out := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || l.text == "-" || strings.HasPrefix(l.text, "- ") {
			break
		}
		ci := topLevelColon(l.text)
		if ci < 0 {
			return nil, fmt.Errorf("topo: yaml line %d: expected \"key: value\", got %q", l.num, l.text)
		}
		keyVal, err := parseFlow(strings.TrimSpace(l.text[:ci]), l.num, depth)
		if err != nil {
			return nil, err
		}
		key, ok := keyVal.(string)
		if !ok {
			key = fmt.Sprint(keyVal)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("topo: yaml line %d: duplicate key %q", l.num, key)
		}
		rest := strings.TrimSpace(l.text[ci+1:])
		if rest == "" {
			p.pos++
			val, err := p.parseChild(indent, depth)
			if err != nil {
				return nil, err
			}
			out[key] = val
			continue
		}
		p.pos++
		val, err := parseFlow(rest, l.num, depth)
		if err != nil {
			return nil, err
		}
		out[key] = val
	}
	return out, nil
}

// parseChild parses a nested node (strictly deeper than parentIndent)
// or yields null when the next line does not nest.
func (p *yamlParser) parseChild(parentIndent, depth int) (any, error) {
	if p.pos >= len(p.lines) || p.lines[p.pos].indent <= parentIndent {
		return nil, nil
	}
	return p.parseNode(p.lines[p.pos].indent, depth+1)
}

// hasTopLevelColon reports whether the line is a mapping entry.
func hasTopLevelColon(s string) bool { return topLevelColon(s) >= 0 }

// topLevelColon finds the index of the key-separating ": " (or a
// trailing ':') outside quotes and flow brackets; -1 if none.
func topLevelColon(s string) int {
	var inSingle, inDouble bool
	bracket := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if i > 0 && s[i-1] == '\\' && inDouble {
				continue
			}
			inDouble = !inDouble
		case inSingle || inDouble:
		case c == '[' || c == '{':
			bracket++
		case c == ']' || c == '}':
			bracket--
		case c == ':' && bracket == 0:
			if i == len(s)-1 || s[i+1] == ' ' {
				return i
			}
		}
	}
	return -1
}

// parseFlow parses a single-line value: flow sequence, flow mapping,
// quoted string, or plain scalar.
func parseFlow(s string, num, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, fmt.Errorf("topo: yaml line %d: flow nesting deeper than %d levels", num, maxYAMLDepth)
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	switch s[0] {
	case '[':
		items, rest, err := parseFlowSeq(s, num, depth)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("topo: yaml line %d: trailing content %q after flow sequence", num, rest)
		}
		return items, nil
	case '{':
		m, rest, err := parseFlowMap(s, num, depth)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("topo: yaml line %d: trailing content %q after flow mapping", num, rest)
		}
		return m, nil
	case '"', '\'':
		str, rest, err := parseQuoted(s, num)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("topo: yaml line %d: trailing content %q after string", num, rest)
		}
		return str, nil
	}
	return plainScalar(s), nil
}

// parseFlowSeq parses "[a, b, ...]" returning the remainder of s.
func parseFlowSeq(s string, num, depth int) ([]any, string, error) {
	body := s[1:] // past '['
	items := []any{}
	for {
		body = strings.TrimLeft(body, " ")
		if body == "" {
			return nil, "", fmt.Errorf("topo: yaml line %d: unterminated flow sequence", num)
		}
		if body[0] == ']' {
			return items, body[1:], nil
		}
		item, rest, err := parseFlowItem(body, num, depth+1)
		if err != nil {
			return nil, "", err
		}
		items = append(items, item)
		body = strings.TrimLeft(rest, " ")
		switch {
		case strings.HasPrefix(body, ","):
			body = body[1:]
		case strings.HasPrefix(body, "]"):
			return items, body[1:], nil
		default:
			return nil, "", fmt.Errorf("topo: yaml line %d: expected ',' or ']' in flow sequence, got %q", num, body)
		}
	}
}

// parseFlowMap parses "{k: v, ...}" returning the remainder of s.
func parseFlowMap(s string, num, depth int) (map[string]any, string, error) {
	body := s[1:] // past '{'
	out := map[string]any{}
	for {
		body = strings.TrimLeft(body, " ")
		if body == "" {
			return nil, "", fmt.Errorf("topo: yaml line %d: unterminated flow mapping", num)
		}
		if body[0] == '}' {
			return out, body[1:], nil
		}
		ci := strings.IndexByte(body, ':')
		bi := strings.IndexAny(body, ",}")
		if ci < 0 || (bi >= 0 && bi < ci) {
			return nil, "", fmt.Errorf("topo: yaml line %d: expected \"key: value\" in flow mapping, got %q", num, body)
		}
		key := strings.TrimSpace(body[:ci])
		if key == "" {
			return nil, "", fmt.Errorf("topo: yaml line %d: empty key in flow mapping", num)
		}
		if _, dup := out[key]; dup {
			return nil, "", fmt.Errorf("topo: yaml line %d: duplicate key %q", num, key)
		}
		val, rest, err := parseFlowItem(strings.TrimLeft(body[ci+1:], " "), num, depth+1)
		if err != nil {
			return nil, "", err
		}
		out[key] = val
		body = strings.TrimLeft(rest, " ")
		switch {
		case strings.HasPrefix(body, ","):
			body = body[1:]
		case strings.HasPrefix(body, "}"):
			return out, body[1:], nil
		default:
			return nil, "", fmt.Errorf("topo: yaml line %d: expected ',' or '}' in flow mapping, got %q", num, body)
		}
	}
}

// parseFlowItem parses one value inside a flow collection and returns
// the unconsumed remainder.
func parseFlowItem(s string, num, depth int) (any, string, error) {
	if depth > maxYAMLDepth {
		return nil, "", fmt.Errorf("topo: yaml line %d: flow nesting deeper than %d levels", num, maxYAMLDepth)
	}
	if s == "" {
		return nil, "", fmt.Errorf("topo: yaml line %d: missing value in flow collection", num)
	}
	switch s[0] {
	case '[':
		return wrapFlow(parseFlowSeq(s, num, depth))
	case '{':
		return wrapFlow(parseFlowMap(s, num, depth))
	case '"', '\'':
		return parseQuoted(s, num)
	}
	end := strings.IndexAny(s, ",]}")
	if end < 0 {
		end = len(s)
	}
	return plainScalar(strings.TrimSpace(s[:end])), s[end:], nil
}

// wrapFlow adapts the typed flow-collection results to (any, string,
// error).
func wrapFlow[T any](v T, rest string, err error) (any, string, error) {
	if err != nil {
		return nil, "", err
	}
	return v, rest, nil
}

// parseQuoted parses a leading quoted string and returns the remainder.
// Double quotes honor JSON-style backslash escapes; single quotes use
// YAML's doubled-quote escape.
func parseQuoted(s string, num int) (string, string, error) {
	quote := s[0]
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case quote == '"' && c == '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("topo: yaml line %d: dangling escape in string", num)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\', '/':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("topo: yaml line %d: unsupported escape \\%c", num, s[i])
			}
		case c == quote:
			if quote == '\'' && i+1 < len(s) && s[i+1] == '\'' {
				b.WriteByte('\'')
				i++
				continue
			}
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("topo: yaml line %d: unterminated string", num)
}

// plainScalar converts an unquoted scalar: null, booleans, integers,
// floats, else a string.
func plainScalar(s string) any {
	switch s {
	case "null", "~", "":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if u, err := strconv.ParseUint(s, 10, 64); err == nil {
		return u
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
