// Package detect implements the state-of-the-art baseline fault
// detectors the paper compares against (§4.3): the distance-function
// monitor of Neukirchner et al. (RTSS 2012), restricted to l-repetitive
// distance functions and modified for the fail-silent fault model, and a
// simple watchdog. Unlike the paper's counter-based framework, both
// baselines need runtime timekeeping: they poll a timer and compare the
// current time against observed event timestamps.
package detect

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// Handler receives a fault-detection event.
type Handler func(name string, at des.Time)

// DistanceMonitor checks a token stream against an l-repetitive
// maximum-distance function: the time spanned by the last n consecutive
// events (n <= l) must never exceed Bounds[n-1], or — under the
// fail-silent model — the stream has stopped and the monitored replica
// is faulty. The check runs on a polling timer of period PollUs, which
// is where the baseline's detection-latency penalty comes from
// (the paper's §4.3 discussion uses a 1 ms poll).
type DistanceMonitor struct {
	k      *des.Kernel
	name   string
	pollUs des.Time
	bounds []des.Time // bounds[n-1]: max distance spanning n gaps
	hist   []des.Time // timestamps of the last l events, oldest first
	events int64

	faulty  bool
	faultAt des.Time
	handler Handler
	started bool
}

// NewDistanceMonitor builds a monitor with an l-repetitive bound vector:
// bounds[n-1] is the maximum allowed distance between an event and the
// n-th event before it. pollUs is the timer period.
func NewDistanceMonitor(k *des.Kernel, name string, pollUs des.Time, bounds []des.Time, handler Handler) *DistanceMonitor {
	if pollUs <= 0 {
		panic(fmt.Sprintf("detect: poll period must be positive, got %d", pollUs))
	}
	if len(bounds) == 0 {
		panic("detect: at least one distance bound (l >= 1) required")
	}
	for i, b := range bounds {
		if b <= 0 {
			panic(fmt.Sprintf("detect: bound[%d] must be positive, got %d", i, b))
		}
	}
	return &DistanceMonitor{
		k: k, name: name, pollUs: pollUs,
		bounds:  append([]des.Time(nil), bounds...),
		handler: handler,
	}
}

// BoundsFromPJD derives the l-repetitive maximum-distance bounds implied
// by a PJD event model: n consecutive inter-event gaps span at most
// n*period + jitter.
func BoundsFromPJD(m rtc.PJD, l int) []des.Time {
	if l < 1 {
		l = 1
	}
	bounds := make([]des.Time, l)
	for n := 1; n <= l; n++ {
		bounds[n-1] = des.Time(n)*m.Period + m.Jitter
	}
	return bounds
}

// Start arms the polling timer. The monitor treats its own start instant
// as a virtual first event so that a stream that never starts is also
// detected.
func (m *DistanceMonitor) Start() {
	if m.started {
		return
	}
	m.started = true
	m.hist = append(m.hist, m.k.Now())
	m.k.Every(m.pollUs, func() bool {
		m.poll()
		return !m.faulty
	})
}

// OnEvent records an observed stream event (token production or
// consumption, depending on what the monitor is attached to).
func (m *DistanceMonitor) OnEvent(now des.Time) {
	m.hist = append(m.hist, now)
	if len(m.hist) > len(m.bounds) {
		m.hist = m.hist[len(m.hist)-len(m.bounds):]
	}
	m.events++
}

// poll is the timer body: the fail-silent check asks whether the
// distance from the n-th most recent event to now exceeds bound[n-1].
func (m *DistanceMonitor) poll() {
	if m.faulty {
		return
	}
	now := m.k.Now()
	for n := 1; n <= len(m.hist); n++ {
		ref := m.hist[len(m.hist)-n]
		if now-ref > m.bounds[n-1] {
			m.faulty = true
			m.faultAt = now
			if m.handler != nil {
				m.handler(m.name, now)
			}
			return
		}
	}
}

// Faulty reports the detection state.
func (m *DistanceMonitor) Faulty() (bool, des.Time) { return m.faulty, m.faultAt }

// Events returns how many stream events the monitor has observed.
func (m *DistanceMonitor) Events() int64 { return m.events }

// Watchdog is the simplest baseline: a single timeout since the last
// event, checked on a polling timer. Only appropriate for strictly
// periodic streams (§1: "simple approaches are not effective for ...
// bursty timing characteristics") — it is here to quantify exactly that.
type Watchdog struct {
	*DistanceMonitor
}

// NewWatchdog builds a watchdog with the given timeout and poll period.
func NewWatchdog(k *des.Kernel, name string, timeoutUs, pollUs des.Time, handler Handler) *Watchdog {
	return &Watchdog{NewDistanceMonitor(k, name, pollUs, []des.Time{timeoutUs}, handler)}
}

// readTap adapts a monitor to kpn.Observer, counting read events.
type readTap struct{ m *DistanceMonitor }

func (t readTap) OnWrite(now des.Time, tok kpn.Token, fill int) {}
func (t readTap) OnRead(now des.Time, tok kpn.Token, fill int)  { t.m.OnEvent(now) }

// writeTap adapts a monitor to kpn.Observer, counting write events.
type writeTap struct{ m *DistanceMonitor }

func (t writeTap) OnWrite(now des.Time, tok kpn.Token, fill int) { t.m.OnEvent(now) }
func (t writeTap) OnRead(now des.Time, tok kpn.Token, fill int)  {}

// ObserveReads attaches the monitor to a FIFO's read events (e.g. a
// replica's consumption from its input queue, the replicator-side
// monitoring point of Table 3).
func ObserveReads(f *kpn.FIFO, m *DistanceMonitor) { f.Observe(readTap{m}) }

// ObserveWrites attaches the monitor to a FIFO's write events (e.g. a
// replica's production into the consumer-side queue).
func ObserveWrites(f *kpn.FIFO, m *DistanceMonitor) { f.Observe(writeTap{m}) }
