package detect

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

func TestBoundsFromPJD(t *testing.T) {
	m := rtc.PJD{Period: 30, Jitter: 5}
	b := BoundsFromPJD(m, 3)
	want := []des.Time{35, 65, 95}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bounds[%d] = %d, want %d", i, b[i], want[i])
		}
	}
	if got := BoundsFromPJD(m, 0); len(got) != 1 {
		t.Errorf("l<1 should clamp to 1, got %d bounds", len(got))
	}
}

func TestDistanceMonitorHealthyStreamSilent(t *testing.T) {
	k := des.NewKernel()
	var fired bool
	mon := NewDistanceMonitor(k, "m", 1000, BoundsFromPJD(rtc.PJD{Period: 5000, Jitter: 500}, 1),
		func(string, des.Time) { fired = true })
	mon.Start()
	k.Spawn("stream", 0, func(p *des.Proc) {
		pacer := kpn.NewPacer(rtc.PJD{Period: 5000, Jitter: 500}, 3)
		for i := 0; i < 40; i++ {
			pacer.WaitNext(p)
			mon.OnEvent(p.Now())
		}
		k.Stop()
	})
	k.Run(0)
	k.Shutdown()
	if fired {
		t.Error("healthy stream within its envelope must not trip the monitor")
	}
	if mon.Events() != 40 {
		t.Errorf("events = %d, want 40", mon.Events())
	}
}

func TestDistanceMonitorDetectsStoppedStream(t *testing.T) {
	k := des.NewKernel()
	var detectedAt des.Time = -1
	mon := NewDistanceMonitor(k, "m", 1000, []des.Time{5500},
		func(_ string, at des.Time) { detectedAt = at; k.Stop() })
	mon.Start()
	k.Spawn("stream", 0, func(p *des.Proc) {
		// Events every 5000 until t=20000, then silence (fail-silent).
		for i := 0; i < 5; i++ {
			mon.OnEvent(p.Now())
			p.Delay(5000)
		}
	})
	k.Run(60_000)
	k.Shutdown()
	// Last event at t=20000; bound 5500 exceeded after t=25500; first
	// poll tick after that is t=26000.
	if detectedAt != 26_000 {
		t.Errorf("detected at %d, want 26000", detectedAt)
	}
	if ok, at := mon.Faulty(); !ok || at != detectedAt {
		t.Errorf("Faulty() = %v,%d", ok, at)
	}
}

func TestDistanceMonitorPollQuantization(t *testing.T) {
	// A coarser poll detects strictly later: the paper's §4.3 point that
	// the baseline pays the polling granularity.
	run := func(poll des.Time) des.Time {
		k := des.NewKernel()
		var at des.Time = -1
		mon := NewDistanceMonitor(k, "m", poll, []des.Time{1000},
			func(_ string, t des.Time) { at = t; k.Stop() })
		mon.Start()
		k.Spawn("stream", 0, func(p *des.Proc) {
			mon.OnEvent(p.Now()) // one event at t=0, then silence
		})
		k.Run(100_000)
		k.Shutdown()
		return at
	}
	fine, coarse := run(100), run(5000)
	if fine < 0 || coarse < 0 {
		t.Fatal("fault not detected")
	}
	if coarse <= fine {
		t.Errorf("coarse poll detected at %d, fine at %d; want coarse later", coarse, fine)
	}
}

func TestDistanceMonitorLRepetitive(t *testing.T) {
	// l=2: a stream may have one long gap (burst pattern) but two
	// consecutive events must not span more than bounds[1]. A monitor
	// with only l=1 would false-positive on the legal long gap.
	k := des.NewKernel()
	var fired bool
	mon := NewDistanceMonitor(k, "m", 100, []des.Time{1800, 2200},
		func(string, des.Time) { fired = true })
	mon.Start()
	k.Spawn("stream", 0, func(p *des.Proc) {
		// Bursty but legal: events at 0, 200, 2000, 2200, 4000, 4200 ...
		for i := 0; i < 10; i++ {
			mon.OnEvent(p.Now())
			p.Delay(200)
			mon.OnEvent(p.Now())
			p.Delay(1800)
		}
		k.Stop()
	})
	k.Run(0)
	k.Shutdown()
	if fired {
		t.Error("legal bursty stream tripped the l=2 monitor")
	}
}

func TestDistanceMonitorNeverStartedStream(t *testing.T) {
	k := des.NewKernel()
	var at des.Time = -1
	mon := NewDistanceMonitor(k, "m", 500, []des.Time{2000},
		func(_ string, t des.Time) { at = t; k.Stop() })
	mon.Start()
	k.Run(30_000)
	k.Shutdown()
	if at != 2500 {
		t.Errorf("silent-from-birth stream detected at %d, want 2500", at)
	}
}

func TestDistanceMonitorValidation(t *testing.T) {
	k := des.NewKernel()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero poll", func() { NewDistanceMonitor(k, "m", 0, []des.Time{1}, nil) })
	mustPanic("no bounds", func() { NewDistanceMonitor(k, "m", 1, nil, nil) })
	mustPanic("bad bound", func() { NewDistanceMonitor(k, "m", 1, []des.Time{0}, nil) })
}

func TestDistanceMonitorStartIdempotent(t *testing.T) {
	k := des.NewKernel()
	mon := NewDistanceMonitor(k, "m", 1000, []des.Time{10_000}, nil)
	mon.Start()
	mon.Start() // must not double-arm the timer
	k.Spawn("s", 0, func(p *des.Proc) { mon.OnEvent(0); k.Stop() })
	k.Run(0)
	k.Shutdown()
}

func TestWatchdog(t *testing.T) {
	k := des.NewKernel()
	var at des.Time = -1
	wd := NewWatchdog(k, "wd", 3000, 1000, func(_ string, t des.Time) { at = t; k.Stop() })
	wd.Start()
	k.Spawn("stream", 0, func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			wd.OnEvent(p.Now())
			p.Delay(2000)
		}
	})
	k.Run(30_000)
	k.Shutdown()
	// Last event t=4000; timeout 3000 exceeded after 7000; poll at 8000.
	if at != 8000 {
		t.Errorf("watchdog fired at %d, want 8000", at)
	}
}

func TestObserveTaps(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 4)
	mr := NewDistanceMonitor(k, "reads", 1000, []des.Time{100_000}, nil)
	mw := NewDistanceMonitor(k, "writes", 1000, []des.Time{100_000}, nil)
	ObserveReads(f, mr)
	ObserveWrites(f, mw)
	k.Spawn("d", 0, func(p *des.Proc) {
		f.Write(p, kpn.Token{Seq: 1})
		f.Write(p, kpn.Token{Seq: 2})
		f.Read(p)
	})
	k.Run(0)
	if mw.Events() != 2 || mr.Events() != 1 {
		t.Errorf("taps saw %d writes, %d reads; want 2/1", mw.Events(), mr.Events())
	}
}

// TestWatchdogFalsePositiveOnBurstyStream demonstrates the paper's §1
// claim: simple timeout-based detection "is not effective for ...
// bursty timing characteristics". A legal bursty stream (pairs of
// events, long legal gap between pairs) trips a watchdog whose timeout
// is tuned to the mean rate, while the l=2 distance-function monitor —
// and, in the full framework, the counter-based detectors — stay quiet.
func TestWatchdogFalsePositiveOnBurstyStream(t *testing.T) {
	run := func(attach func(k *des.Kernel) func() (bool, des.Time)) (bool, des.Time) {
		k := des.NewKernel()
		check := attach(k)
		k.Spawn("bursty", 0, func(p *des.Proc) {
			// Legal pattern: events at 0, 200, 2000, 2200, 4000, ...
			for i := 0; i < 20; i++ {
				p.Delay(200)
				p.Delay(1800)
			}
			k.Stop()
		})
		k.Run(0)
		k.Shutdown()
		return check()
	}

	// Mean period is 1000; a watchdog at 1.5x mean rate misfires on the
	// legal 1800 gap.
	fired, _ := run(func(k *des.Kernel) func() (bool, des.Time) {
		wd := NewWatchdog(k, "wd", 1500, 100, nil)
		wd.Start()
		k.Spawn("tap", 0, func(p *des.Proc) {
			for i := 0; i < 20; i++ {
				p.Delay(200)
				wd.OnEvent(p.Now())
				p.Delay(1800)
				wd.OnEvent(p.Now())
			}
		})
		return wd.Faulty
	})
	if !fired {
		t.Error("watchdog tuned to the mean rate should false-positive on a bursty stream")
	}

	// The l=2 distance monitor with the correct per-distance bounds does
	// not.
	fired2, _ := run(func(k *des.Kernel) func() (bool, des.Time) {
		mon := NewDistanceMonitor(k, "df", 100, []des.Time{1900, 2100}, nil)
		mon.Start()
		k.Spawn("tap", 0, func(p *des.Proc) {
			for i := 0; i < 20; i++ {
				p.Delay(200)
				mon.OnEvent(p.Now())
				p.Delay(1800)
				mon.OnEvent(p.Now())
			}
		})
		return mon.Faulty
	})
	if fired2 {
		t.Error("l=2 distance monitor must accept the legal bursty stream")
	}
}
