package main

import "testing"

func TestRunTable1(t *testing.T) {
	if err := run("table1", "all", 1, 1000, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2SingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run("table2", "adpcm", 2, 1000, 80); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run("table3", "all", 2, 1000, 80); err != nil {
		t.Fatal(err)
	}
}

func TestRunFills(t *testing.T) {
	if err := run("fills", "adpcm", 1, 1000, 60); err != nil {
		t.Fatal(err)
	}
	// "all" falls back to the ADPCM profile.
	if err := run("fills", "all", 1, 1000, 60); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "all", 1, 1000, 0); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run("table2", "unknown-app", 1, 1000, 0); err == nil {
		t.Error("unknown app should fail")
	}
	if err := run("fills", "unknown-app", 1, 1000, 0); err == nil {
		t.Error("unknown app should fail for fills")
	}
}
