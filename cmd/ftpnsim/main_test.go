package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// cli builds a config with test defaults (sequential unless stated).
func cli(expName, appName string, runs int, pollUs, tokens int64) cliConfig {
	return cliConfig{
		expName: expName, appName: appName, runs: runs,
		pollUs: pollUs, tokens: tokens, parallel: 1, out: "-",
	}
}

func TestRunTable1(t *testing.T) {
	if err := run(cli("table1", "all", 1, 1000, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2SingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run(cli("table2", "adpcm", 2, 1000, 80)); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2Parallel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := cli("table2", "adpcm", 2, 1000, 80)
	cfg.parallel = 4
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run(cli("table3", "all", 2, 1000, 80)); err != nil {
		t.Fatal(err)
	}
}

func TestRunFills(t *testing.T) {
	if err := run(cli("fills", "adpcm", 1, 1000, 60)); err != nil {
		t.Fatal(err)
	}
	// "all" falls back to the ADPCM profile.
	if err := run(cli("fills", "all", 1, 1000, 60)); err != nil {
		t.Fatal(err)
	}
}

func TestRunTracefile(t *testing.T) {
	cfg := cli("table1", "adpcm", 1, 1000, 100)
	cfg.tracefile = filepath.Join(t.TempDir(), "out.json")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.tracefile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("tracefile is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("tracefile has no events")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(cli("nope", "all", 1, 1000, 0)); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run(cli("table2", "unknown-app", 1, 1000, 0)); err == nil {
		t.Error("unknown app should fail")
	}
	if err := run(cli("fills", "unknown-app", 1, 1000, 0)); err == nil {
		t.Error("unknown app should fail for fills")
	}
}
