// Command ftpnsim regenerates the paper's evaluation tables from the
// simulator:
//
//	ftpnsim -exp table1
//	ftpnsim -exp table2 -app mjpeg -runs 20
//	ftpnsim -exp table2 -app all   -runs 20
//	ftpnsim -exp table3 -runs 20 -poll 1000
//	ftpnsim -exp bench  -out BENCH_PR1.json
//	ftpnsim -exp campaign -n 1000 -seed 1 -out BENCH_PR2.json
//	ftpnsim -exp obsbench -out BENCH_PR4.json
//	ftpnsim -exp corebench -out BENCH_PR5.json
//	ftpnsim -exp shardbench -shards 1,2,4,8 -out BENCH_PR6.json
//	ftpnsim -exp detectbench -runs 25 -seed 1 -out BENCH_PR7.json
//	ftpnsim -exp topobench -n 1000 -seed 1 -out BENCH_PR8.json
//	ftpnsim -exp campaign -policy mk+value -mk 2,16
//	ftpnsim -exp table2 -app adpcm -tracefile out.json
//	ftpnsim -exp campaign -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -tracefile additionally records one fault + recovery run of the
// selected application as a Chrome trace-event timeline (queue-fill
// counter tracks, fault/conviction/re-integration markers) loadable in
// Perfetto or chrome://tracing. The obsbench experiment prices the
// observability hooks (disabled vs metrics-enabled channel ops);
// -seed-sel-ns/-seed-rep-ns feed it the seed tree's ns/op for the
// regression comparison (see scripts/bench.sh). The corebench
// experiment measures the simulation core — bucket-queue scheduler vs
// the heap oracle, SPSC channel fast path vs the locked oracle, and the
// memoized campaign with its parallel-level bit-identity check;
// -seed-campaign-ns feeds it the seed tree's campaign wall-clock. The
// shardbench experiment sweeps the conservative sharded kernel across
// the -shards counts — dispatch and pipeline scaling plus the
// application identity matrix (every app, shards 1..8, byte-identical
// canonical traces against the single-kernel oracle). The detectbench
// experiment measures detection latency and false-positive rate per
// fault class (transient glitch/burst, permanent stop/drift/drop,
// value corruption) under the binary, per-app (m,k) weakly-hard, and
// (m,k)+value-check policies, and compares measured latency against
// the analytic detection bound. The topobench experiment generates -n
// seeded random topologies from the internal/topo DSL and
// property-checks each one — analytic sizing admits zero false
// convictions, Lemma 1 isolation and masking under a scripted fault,
// (m,k) detection bounds, and sequential-vs-sharded trace identity —
// then round-trips the paper apps through the DSL against their golden
// streams; it exits non-zero on any violation.
//
// -cpuprofile/-memprofile write pprof profiles covering the selected
// experiment (the memory profile is written at exit, after a final GC).
//
// The campaign experiment sweeps randomized fault scenarios (mode ×
// replica × injection time × repair delay × jitter tier × app) through
// the detection→recovery→re-integration arc and machine-checks the
// framework's invariants on every run; it exits non-zero if any run
// violates one.
//
// Independent fault-injection runs execute on a worker pool (-parallel,
// default GOMAXPROCS); results are aggregated in run order, so the
// output is identical at any parallelism level. Times are virtual (µs
// ticks) on the SCC platform model; see EXPERIMENTS.md for the
// paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"ftpn/internal/des"
	"ftpn/internal/exp"
	"ftpn/internal/ft"
)

// cliConfig carries the parsed command-line options.
type cliConfig struct {
	expName  string
	appName  string
	runs     int
	pollUs   int64
	tokens   int64
	parallel int
	out      string // report path, "-" = stdout, "" = per-experiment default
	n        int    // campaign runs
	seed     int64  // campaign PRNG seed

	tracefile string // Chrome-trace output path ("" = off)
	seedSelNs int64  // seed selector ns/op for obsbench ("0" = unknown)
	seedRepNs int64  // seed replicator ns/op for obsbench

	seedCampaignNs int64  // seed campaign wall-clock ns for corebench
	golden         string // pre-PR campaign report for corebench's diff
	shards         string // shard counts CSV for shardbench
	cpuprofile     string // pprof CPU profile path ("" = off)
	memprofile     string // pprof heap profile path ("" = off)

	policy string // detection policy: "", binary, mk, binary+value, mk+value
	mk     string // (m,k) parameters for -policy mk, as "m,k"
}

// parsePolicy resolves the -policy/-mk flags into a policy spec. The
// empty policy keeps the inline first-violation path (and the
// campaign's legacy byte-identical output).
func parsePolicy(policy, mk string) (ft.PolicySpec, error) {
	var sp ft.PolicySpec
	if s, ok := strings.CutSuffix(policy, "+value"); ok {
		sp.Value = true
		policy = s
	}
	switch policy {
	case "":
		if sp.Value {
			sp.Kind = ft.PolicyBinary
		}
	case "binary":
		sp.Kind = ft.PolicyBinary
	case "mk":
		sp.Kind = ft.PolicyMK
		if _, err := fmt.Sscanf(mk, "%d,%d", &sp.M, &sp.K); err != nil {
			return sp, fmt.Errorf("invalid -mk %q (want \"m,k\", e.g. -mk 2,16): %v", mk, err)
		}
	default:
		return sp, fmt.Errorf("unknown -policy %q (want binary, mk, binary+value or mk+value)", policy)
	}
	if _, err := ft.NewPolicy(sp); err != nil {
		return sp, err
	}
	return sp, nil
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.expName, "exp", "table2", "experiment: table1, table2, table3, report, fills, bench, campaign, obsbench, corebench, shardbench, detectbench, topobench or latbench")
	flag.StringVar(&cfg.appName, "app", "all", "application: mjpeg, adpcm, h264 or all")
	flag.IntVar(&cfg.runs, "runs", 20, "fault-injection runs per configuration")
	flag.Int64Var(&cfg.pollUs, "poll", 1000, "distance-function poll period in µs (table3)")
	flag.Int64Var(&cfg.tokens, "tokens", 0, "override workload length in tokens (0 = default)")
	flag.IntVar(&cfg.parallel, "parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent runs")
	flag.StringVar(&cfg.out, "out", "", "report output path (- for stdout; default BENCH_PR1.json for bench, BENCH_PR2.json for campaign)")
	flag.IntVar(&cfg.n, "n", 1000, "randomized scenarios in a campaign")
	flag.Int64Var(&cfg.seed, "seed", 1, "campaign PRNG seed")
	flag.StringVar(&cfg.tracefile, "tracefile", "", "also write a Chrome-trace timeline of one fault+recovery run of the selected app")
	flag.Int64Var(&cfg.seedSelNs, "seed-sel-ns", 0, "seed selector ns/op baseline for obsbench (0 = skip seed comparison)")
	flag.Int64Var(&cfg.seedRepNs, "seed-rep-ns", 0, "seed replicator ns/op baseline for obsbench (0 = skip seed comparison)")
	flag.Int64Var(&cfg.seedCampaignNs, "seed-campaign-ns", 0, "seed campaign wall-clock ns baseline for corebench (0 = skip seed comparison)")
	flag.StringVar(&cfg.golden, "golden", "", "pre-PR campaign report corebench diffs against (default BENCH_PR2.json)")
	flag.StringVar(&cfg.shards, "shards", "1,2,4,8", "shard counts shardbench sweeps (comma-separated)")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the experiment to this path")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a pprof heap profile at exit to this path")
	flag.StringVar(&cfg.policy, "policy", "", "campaign detection policy: binary, mk, binary+value or mk+value (default: inline first-violation path)")
	flag.StringVar(&cfg.mk, "mk", "", "(m,k) window for -policy mk, as \"m,k\" (e.g. -mk 2,16)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ftpnsim: %v\n", err)
		os.Exit(1)
	}
}

// parseShards parses the -shards CSV into positive shard counts.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -shards entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards is empty")
	}
	return out, nil
}

func run(cfg cliConfig) error {
	stop, err := startProfiles(cfg)
	if err != nil {
		return err
	}
	defer stop()
	if err := runExperiment(cfg); err != nil {
		return err
	}
	return writeTrace(cfg)
}

// startProfiles arms the -cpuprofile/-memprofile collectors and returns
// the function that flushes them once the experiment is done.
func startProfiles(cfg cliConfig) (stop func(), err error) {
	var cpuF *os.File
	if cfg.cpuprofile != "" {
		cpuF, err = os.Create(cfg.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", cfg.cpuprofile)
		}
		if cfg.memprofile != "" {
			f, err := os.Create(cfg.memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftpnsim: memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ftpnsim: memprofile: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", cfg.memprofile)
		}
	}, nil
}

// writeTrace records the -tracefile timeline, if requested.
func writeTrace(cfg cliConfig) error {
	if cfg.tracefile == "" {
		return nil
	}
	name := cfg.appName
	if name == "all" || name == "" {
		name = "adpcm"
	}
	app, err := exp.AppByName(name, false, cfg.tokens)
	if err != nil {
		return err
	}
	f, err := os.Create(cfg.tracefile)
	if err != nil {
		return err
	}
	if err := exp.WriteChromeTrace(app, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "chrome trace of one %s fault+recovery run written to %s\n", name, cfg.tracefile)
	return nil
}

func runExperiment(cfg cliConfig) error {
	var opts []exp.Option
	if cfg.parallel > 0 {
		opts = append(opts, exp.WithParallelism(cfg.parallel))
	}
	switch cfg.expName {
	case "table1":
		fmt.Print(exp.FormatTable1(exp.Table1()))
		return nil
	case "table2":
		names := []string{"mjpeg", "adpcm", "h264"}
		if cfg.appName != "all" {
			names = []string{cfg.appName}
		}
		for _, n := range names {
			app, err := exp.AppByName(n, false, cfg.tokens)
			if err != nil {
				return err
			}
			res, err := exp.Table2(app, cfg.runs, opts...)
			if err != nil {
				return err
			}
			fmt.Println(res.String())
		}
		return nil
	case "table3":
		rows, err := exp.Table3(cfg.runs, des.Time(cfg.pollUs), des.Time(cfg.tokens), opts...)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatTable3(rows))
		return nil
	case "report":
		return exp.WriteReport(os.Stdout, exp.ReportConfig{
			Runs: cfg.runs, Tokens: cfg.tokens, PollUs: des.Time(cfg.pollUs),
			Parallel: cfg.parallel,
		})
	case "fills":
		name := cfg.appName
		if name == "all" {
			name = "adpcm"
		}
		app, err := exp.AppByName(name, false, cfg.tokens)
		if err != nil {
			return err
		}
		samples, sizing, err := exp.FillProfile(app, 1, app.PeriodUs)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFillProfile(samples, sizing, app, 1))
		return nil
	case "bench":
		out := cfg.out
		if out == "" {
			out = "BENCH_PR1.json"
		}
		var w io.Writer = os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := exp.RunBenchSuite(w, os.Stderr); err != nil {
			return err
		}
		if out != "-" {
			fmt.Fprintf(os.Stderr, "bench report written to %s\n", out)
		}
		return nil
	case "obsbench":
		out := cfg.out
		if out == "" {
			out = "BENCH_PR4.json"
		}
		var w io.Writer = os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := exp.RunObsBenchSuite(w, os.Stderr, cfg.seedSelNs, cfg.seedRepNs); err != nil {
			return err
		}
		if out != "-" {
			fmt.Fprintf(os.Stderr, "observability bench report written to %s\n", out)
		}
		return nil
	case "corebench":
		out := cfg.out
		if out == "" {
			out = "BENCH_PR5.json"
		}
		var w io.Writer = os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := exp.RunCoreBenchSuite(w, os.Stderr, exp.CoreBenchConfig{
			CampaignRuns:   cfg.n,
			SeedCampaignNs: cfg.seedCampaignNs,
			GoldenPath:     cfg.golden,
		}); err != nil {
			return err
		}
		if out != "-" {
			fmt.Fprintf(os.Stderr, "simulation-core bench report written to %s\n", out)
		}
		return nil
	case "shardbench":
		shards, err := parseShards(cfg.shards)
		if err != nil {
			return err
		}
		out := cfg.out
		if out == "" {
			out = "BENCH_PR6.json"
		}
		var w io.Writer = os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := exp.RunShardBenchSuite(w, os.Stderr, exp.ShardBenchConfig{
			Shards: shards,
			Tokens: cfg.tokens,
		}); err != nil {
			return err
		}
		if out != "-" {
			fmt.Fprintf(os.Stderr, "sharded-simulation bench report written to %s\n", out)
		}
		return nil
	case "detectbench":
		rep, err := exp.DetectBench(cfg.runs, cfg.seed, opts...)
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		out := cfg.out
		if out == "" {
			out = "BENCH_PR7.json"
		}
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "detection bench report written to %s\n", out)
		} else if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
		return nil
	case "topobench":
		rep, err := exp.TopoBench(cfg.n, cfg.seed, opts...)
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		out := cfg.out
		if out == "" {
			out = "BENCH_PR8.json"
		}
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "topology bench report written to %s\n", out)
		} else if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
		if rep.Violations > 0 {
			return fmt.Errorf("topobench: %d property violations across %d generated networks", rep.Violations, rep.Networks)
		}
		return nil
	case "latbench":
		rep, err := exp.LatBench(cfg.n, cfg.seed, cfg.seedSelNs, cfg.seedRepNs, opts...)
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		out := cfg.out
		if out == "" {
			out = "BENCH_PR9.json"
		}
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "detection-latency bench report written to %s\n", out)
		} else if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
		if rep.Violations > 0 {
			return fmt.Errorf("latbench: %d violations across %d generated networks", rep.Violations, rep.Networks)
		}
		return nil
	case "campaign":
		pol, err := parsePolicy(cfg.policy, cfg.mk)
		if err != nil {
			return err
		}
		res, err := exp.Campaign(exp.CampaignConfig{Runs: cfg.n, Seed: cfg.seed, Policy: pol}, opts...)
		if err != nil {
			return err
		}
		fmt.Print(res.String())
		out := cfg.out
		if out == "" {
			out = "BENCH_PR2.json"
		}
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := res.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "campaign report written to %s\n", out)
		} else if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
		if res.Violations > 0 {
			return fmt.Errorf("campaign: %d of %d runs violated an invariant", res.Violations, res.Runs)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (want table1, table2, table3, report, fills, bench, campaign, obsbench, corebench, shardbench, detectbench, topobench or latbench)", cfg.expName)
	}
}
