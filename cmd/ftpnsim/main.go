// Command ftpnsim regenerates the paper's evaluation tables from the
// simulator:
//
//	ftpnsim -exp table1
//	ftpnsim -exp table2 -app mjpeg -runs 20
//	ftpnsim -exp table2 -app all   -runs 20
//	ftpnsim -exp table3 -runs 20 -poll 1000
//
// Times are virtual (µs ticks) on the SCC platform model; see
// EXPERIMENTS.md for the paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftpn/internal/des"
	"ftpn/internal/exp"
)

func main() {
	var (
		expName = flag.String("exp", "table2", "experiment: table1, table2 or table3")
		appName = flag.String("app", "all", "application: mjpeg, adpcm, h264 or all")
		runs    = flag.Int("runs", 20, "fault-injection runs per configuration")
		pollUs  = flag.Int64("poll", 1000, "distance-function poll period in µs (table3)")
		tokens  = flag.Int64("tokens", 0, "override workload length in tokens (0 = default)")
	)
	flag.Parse()
	if err := run(*expName, *appName, *runs, *pollUs, *tokens); err != nil {
		fmt.Fprintf(os.Stderr, "ftpnsim: %v\n", err)
		os.Exit(1)
	}
}

func run(expName, appName string, runs int, pollUs, tokens int64) error {
	switch expName {
	case "table1":
		fmt.Print(exp.FormatTable1(exp.Table1()))
		return nil
	case "table2":
		names := []string{"mjpeg", "adpcm", "h264"}
		if appName != "all" {
			names = []string{appName}
		}
		for _, n := range names {
			app, err := exp.AppByName(n, false, tokens)
			if err != nil {
				return err
			}
			res, err := exp.Table2(app, runs)
			if err != nil {
				return err
			}
			fmt.Println(res.String())
		}
		return nil
	case "table3":
		rows, err := exp.Table3(runs, des.Time(pollUs), des.Time(tokens))
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatTable3(rows))
		return nil
	case "report":
		return exp.WriteReport(os.Stdout, exp.ReportConfig{
			Runs: runs, Tokens: tokens, PollUs: des.Time(pollUs),
		})
	case "fills":
		name := appName
		if name == "all" {
			name = "adpcm"
		}
		app, err := exp.AppByName(name, false, tokens)
		if err != nil {
			return err
		}
		samples, sizing, err := exp.FillProfile(app, 1, app.PeriodUs)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFillProfile(samples, sizing, app, 1))
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (want table1, table2, table3 or fills)", expName)
	}
}
