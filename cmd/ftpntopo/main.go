// Command ftpntopo dumps process-network topologies as Graphviz DOT or
// plain summaries — the paper's figures, any built-in app, and
// declarative internal/topo specs (hand-written or generated):
//
//	ftpntopo -fig 1            # Figure 1: reference + duplicated network
//	ftpntopo -fig 2            # Figure 2: MJPEG decoder and ADPCM app
//	ftpntopo -app h264 -dup    # any app, duplicated topology
//	ftpntopo -load net.yaml    # a JSON/YAML topology spec
//	ftpntopo -load net.yaml -emit   # ... re-emitted as canonical JSON
//	ftpntopo -gen 42 -dup      # a generated topology, duplicated
package main

import (
	"flag"
	"fmt"
	"os"

	"ftpn/internal/des"
	"ftpn/internal/exp"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/topo"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "paper figure to dump (1 or 2); 0 selects -app")
		appName = flag.String("app", "mjpeg", "application topology: mjpeg, adpcm or h264")
		load    = flag.String("load", "", "load a topology spec (JSON or YAML) instead of a built-in app")
		gen     = flag.Int64("gen", -1, "generate the seeded random topology instead of a built-in app (-1 = off)")
		dup     = flag.Bool("dup", false, "dump the duplicated (fault-tolerant) topology")
		summary = flag.Bool("summary", false, "plain summary instead of DOT")
		emitJS  = flag.Bool("emit", false, "with -load/-gen: dump the canonical JSON spec instead of DOT")
	)
	flag.Parse()
	if err := run(*fig, *appName, *load, *gen, *dup, *summary, *emitJS); err != nil {
		fmt.Fprintf(os.Stderr, "ftpntopo: %v\n", err)
		os.Exit(1)
	}
}

func run(fig int, appName, load string, gen int64, dup, summary, emitJS bool) error {
	if load != "" || gen >= 0 {
		return runSpec(load, gen, dup, summary, emitJS)
	}
	switch fig {
	case 1:
		// Figure 1 shows a generic producer -> critical -> consumer
		// network and its duplicated counterpart.
		app, err := exp.AppByName("adpcm", false, 1)
		if err != nil {
			return err
		}
		net, err := app.Build(nil)
		if err != nil {
			return err
		}
		net.Name = "reference"
		fmt.Println("// Figure 1 (top): reference process network")
		emit(net, summary)
		fmt.Println("// Figure 1 (bottom): duplicated process network")
		return emitDup(net, summary)
	case 2:
		for _, n := range []string{"mjpeg", "adpcm"} {
			app, err := exp.AppByName(n, false, 1)
			if err != nil {
				return err
			}
			net, err := app.Build(nil)
			if err != nil {
				return err
			}
			fmt.Printf("// Figure 2: %s\n", app.Name)
			emit(net, summary)
		}
		return nil
	case 0:
		app, err := exp.AppByName(appName, false, 1)
		if err != nil {
			return err
		}
		net, err := app.Build(nil)
		if err != nil {
			return err
		}
		if dup {
			return emitDup(net, summary)
		}
		emit(net, summary)
		return nil
	default:
		return fmt.Errorf("unknown figure %d", fig)
	}
}

// runSpec dumps a declarative topo.Spec, loaded from a file or freshly
// generated from a seed.
func runSpec(load string, gen int64, dup, summary, emitJS bool) error {
	if load != "" && gen >= 0 {
		return fmt.Errorf("-load and -gen are mutually exclusive")
	}
	var spec *topo.Spec
	if load != "" {
		data, err := os.ReadFile(load)
		if err != nil {
			return err
		}
		spec, err = topo.Parse(data)
		if err != nil {
			return err
		}
		if err := spec.Validate(); err != nil {
			return err
		}
	} else {
		spec = topo.Generate(gen)
	}
	if emitJS {
		out, err := topo.Emit(spec)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(out)
		return err
	}
	if dup {
		// The duplicated dump needs real behaviors (the ft transform
		// wraps the factories), so compile the spec into a model first.
		model, err := topo.Compile(spec)
		if err != nil {
			return err
		}
		net, err := model.Build(nil)
		if err != nil {
			return err
		}
		return emitDup(net, summary)
	}
	// The reference dump is purely structural: the behavior-less
	// skeleton carries the full graph, so it also covers extern specs
	// that cannot compile without bindings.
	emit(spec.Skeleton(), summary)
	return nil
}

func emit(net *kpn.Network, summary bool) {
	if summary {
		fmt.Println(net.Summary())
		return
	}
	fmt.Print(net.DOT())
}

func emitDup(net *kpn.Network, summary bool) error {
	k := des.NewKernel()
	sys, err := ft.Build(k, net, ft.BuildConfig{})
	if err != nil {
		return err
	}
	defer k.Shutdown()
	if summary {
		fmt.Print(sys.DOT()) // the DOT form is the canonical dump
		return nil
	}
	fmt.Print(sys.DOT())
	return nil
}
