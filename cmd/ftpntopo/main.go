// Command ftpntopo dumps the process-network topologies of the paper's
// figures as Graphviz DOT or plain summaries:
//
//	ftpntopo -fig 1            # Figure 1: reference + duplicated network
//	ftpntopo -fig 2            # Figure 2: MJPEG decoder and ADPCM app
//	ftpntopo -app h264 -dup    # any app, duplicated topology
package main

import (
	"flag"
	"fmt"
	"os"

	"ftpn/internal/des"
	"ftpn/internal/exp"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "paper figure to dump (1 or 2); 0 selects -app")
		appName = flag.String("app", "mjpeg", "application topology: mjpeg, adpcm or h264")
		dup     = flag.Bool("dup", false, "dump the duplicated (fault-tolerant) topology")
		summary = flag.Bool("summary", false, "plain summary instead of DOT")
	)
	flag.Parse()
	if err := run(*fig, *appName, *dup, *summary); err != nil {
		fmt.Fprintf(os.Stderr, "ftpntopo: %v\n", err)
		os.Exit(1)
	}
}

func run(fig int, appName string, dup, summary bool) error {
	switch fig {
	case 1:
		// Figure 1 shows a generic producer -> critical -> consumer
		// network and its duplicated counterpart.
		app, err := exp.AppByName("adpcm", false, 1)
		if err != nil {
			return err
		}
		net, err := app.Build(nil)
		if err != nil {
			return err
		}
		net.Name = "reference"
		fmt.Println("// Figure 1 (top): reference process network")
		emit(net, summary)
		fmt.Println("// Figure 1 (bottom): duplicated process network")
		return emitDup(net, summary)
	case 2:
		for _, n := range []string{"mjpeg", "adpcm"} {
			app, err := exp.AppByName(n, false, 1)
			if err != nil {
				return err
			}
			net, err := app.Build(nil)
			if err != nil {
				return err
			}
			fmt.Printf("// Figure 2: %s\n", app.Name)
			emit(net, summary)
		}
		return nil
	case 0:
		app, err := exp.AppByName(appName, false, 1)
		if err != nil {
			return err
		}
		net, err := app.Build(nil)
		if err != nil {
			return err
		}
		if dup {
			return emitDup(net, summary)
		}
		emit(net, summary)
		return nil
	default:
		return fmt.Errorf("unknown figure %d", fig)
	}
}

func emit(net *kpn.Network, summary bool) {
	if summary {
		fmt.Println(net.Summary())
		return
	}
	fmt.Print(net.DOT())
}

func emitDup(net *kpn.Network, summary bool) error {
	k := des.NewKernel()
	sys, err := ft.Build(k, net, ft.BuildConfig{})
	if err != nil {
		return err
	}
	defer k.Shutdown()
	if summary {
		fmt.Print(sys.DOT()) // the DOT form is the canonical dump
		return nil
	}
	fmt.Print(sys.DOT())
	return nil
}
