package main

import (
	"os"
	"path/filepath"
	"testing"

	"ftpn/internal/topo"
)

func TestRunFigures(t *testing.T) {
	for _, fig := range []int{1, 2} {
		for _, summary := range []bool{false, true} {
			if err := run(fig, "", "", -1, false, summary, false); err != nil {
				t.Errorf("fig %d summary=%v: %v", fig, summary, err)
			}
		}
	}
}

func TestRunAppTopologies(t *testing.T) {
	for _, app := range []string{"mjpeg", "adpcm", "h264"} {
		if err := run(0, app, "", -1, false, false, false); err != nil {
			t.Errorf("%s reference: %v", app, err)
		}
		if err := run(0, app, "", -1, true, false, false); err != nil {
			t.Errorf("%s duplicated: %v", app, err)
		}
	}
}

// testdata lives with the topo package; the specs double as the parser
// corpus there.
func specPath(name string) string {
	return filepath.Join("..", "..", "internal", "topo", "testdata", name)
}

func TestRunLoadSpec(t *testing.T) {
	for _, name := range []string{"chain.json", "chain.yaml", "feedback.yaml"} {
		for _, dup := range []bool{false, true} {
			if err := run(0, "", specPath(name), -1, dup, false, false); err != nil {
				t.Errorf("-load %s dup=%v: %v", name, dup, err)
			}
		}
		if err := run(0, "", specPath(name), -1, false, false, true); err != nil {
			t.Errorf("-load %s -emit: %v", name, err)
		}
	}
}

func TestRunGenSpec(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		if err := run(0, "", "", seed, false, false, false); err != nil {
			t.Errorf("-gen %d: %v", seed, err)
		}
		if err := run(0, "", "", seed, true, true, false); err != nil {
			t.Errorf("-gen %d -dup -summary: %v", seed, err)
		}
		if err := run(0, "", "", seed, false, false, true); err != nil {
			t.Errorf("-gen %d -emit: %v", seed, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(9, "", "", -1, false, false, false); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := run(0, "unknown", "", -1, false, false, false); err == nil {
		t.Error("unknown app should fail")
	}
	if err := run(0, "", "no-such-file.yaml", -1, false, false, false); err == nil {
		t.Error("missing -load file should fail")
	}
	if err := run(0, "", "x.yaml", 3, false, false, false); err == nil {
		t.Error("-load with -gen should fail")
	}
	// A spec that parses but fails validation must be rejected.
	bad := filepath.Join(t.TempDir(), "bad.json")
	spec := &topo.Spec{Name: "bad", Tokens: 0}
	data, err := topo.Emit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(0, "", bad, -1, false, false, false); err == nil {
		t.Error("invalid spec should fail validation")
	}
}
