package main

import "testing"

func TestRunFigures(t *testing.T) {
	for _, fig := range []int{1, 2} {
		for _, summary := range []bool{false, true} {
			if err := run(fig, "", false, summary); err != nil {
				t.Errorf("fig %d summary=%v: %v", fig, summary, err)
			}
		}
	}
}

func TestRunAppTopologies(t *testing.T) {
	for _, app := range []string{"mjpeg", "adpcm", "h264"} {
		if err := run(0, app, false, false); err != nil {
			t.Errorf("%s reference: %v", app, err)
		}
		if err := run(0, app, true, false); err != nil {
			t.Errorf("%s duplicated: %v", app, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(9, "", false, false); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := run(0, "unknown", false, false); err == nil {
		t.Error("unknown app should fail")
	}
}
